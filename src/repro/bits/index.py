"""Streaming structural index over the input (paper Section 4.1).

The index is the chunked, lazily-built store of string-filtered
metacharacter bitmaps that every fast-forward algorithm reads.  It is the
reproduction's stand-in for the paper's "build the bitmaps for the current
word on demand": we classify a whole *chunk* (default 64 KiB) at a time
with numpy — the SIMD substitute — and expose the result both as mirrored
``uint64`` words (for the paper-faithful word-at-a-time scanner) and as
sorted position arrays (for the vectorized scanner).

Streaming discipline: chunks are built strictly forward (the string-mask
carries chain across chunks) and old chunks are evicted from a small LRU,
so memory stays ``O(input + chunk)`` — the property Figure 13 measures.
Preprocessing-style baselines reuse the same machinery with an unbounded
cache.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.bits.classify import (
    DERIVED_CLASSES,
    STRUCTURAL_CLASSES,
    CharClass,
    classify_chunk,
    int_to_words,
    packed_to_int,
)
from repro.bits.strings import INITIAL_CARRY, StringCarry, compute_string_mask

#: Default index chunk: 1 MiB balances per-chunk decode cost against
#: chunk-crossing overhead in the scanner; the streaming engines' bounded
#: auxiliary memory is O(chunk_size), configurable per engine (the paper:
#: "memory consumption is actually configurable by adjusting the input
#: buffer size").
DEFAULT_CHUNK_SIZE = 1 << 20

_WORD_BITS = 64


@dataclass
class ChunkIndex:
    """Structural bitmaps for one chunk of the input.

    Attributes
    ----------
    start:
        Absolute byte offset of the chunk's first character.
    length:
        Number of input characters covered (the final chunk may be short;
        bitmap pad bits beyond ``length`` are zero).
    words:
        Mirrored ``uint64`` word bitmaps per :class:`CharClass`.  The six
        structural classes and the derived unions are string-filtered;
        ``QUOTE`` holds *unescaped* quotes (not string-filtered — it is the
        map used to find where strings begin and end).
    in_string:
        Chunk-wide in-string mask as a Python integer (kept for validation
        and for the primitive tokenizer).
    carry_in, carry_out:
        String-mask state chained across chunks.
    """

    start: int
    length: int
    words: dict[CharClass, np.ndarray]
    in_string: int
    carry_in: StringCarry
    carry_out: StringCarry
    _positions: dict[CharClass, np.ndarray] = field(default_factory=dict, repr=False)
    _positions_list: dict[CharClass, "array[int]"] = field(default_factory=dict, repr=False)

    @property
    def end(self) -> int:
        """Absolute offset one past the chunk's last character."""
        return self.start + self.length

    @property
    def n_words(self) -> int:
        return len(self.words[CharClass.LBRACE])

    def positions(self, cls: CharClass) -> np.ndarray:
        """Sorted absolute positions of ``cls`` occurrences in this chunk.

        Decoded lazily from the word bitmaps (``np.flatnonzero`` over the
        unpacked bits) and cached; this is the data structure behind
        :class:`repro.bits.scanner.VectorScanner`.
        """
        cached = self._positions.get(cls)
        if cached is None:
            packed = self.words[cls].view(np.uint8)
            bits = np.unpackbits(packed, bitorder="little", count=self.length)
            cached = np.flatnonzero(bits).astype(np.int64) + self.start
            self._positions[cls] = cached
        return cached

    def positions_list(self, cls: CharClass) -> "array[int]":
        """The same positions as a compact ``array('q')``.

        Scalar binary searches (``bisect``) over an array are several
        times faster than ``np.searchsorted`` calls from Python, and the
        scanner issues millions of them; decoded once per chunk per class
        at 8 bytes per position (no boxed ints).
        """
        cached = self._positions_list.get(cls)
        if cached is None:
            cached = array("q")
            cached.frombytes(np.ascontiguousarray(self.positions(cls)).tobytes())
            self._positions_list[cls] = cached
        return cached


def build_chunk_index(chunk: bytes, start: int, carry: StringCarry = INITIAL_CARRY) -> ChunkIndex:
    """Classify one chunk and produce its :class:`ChunkIndex`.

    This is the per-chunk pipeline of Algorithm 3's ``buildMetacharBitmap``:
    raw classification, escaped-character removal, in-string masking, and
    the AND that strips pseudo-metacharacters.
    """
    raw = classify_chunk(chunk)
    n_words = len(raw[CharClass.LBRACE]) // 8
    bits = n_words * _WORD_BITS

    quotes_int = packed_to_int(raw[CharClass.QUOTE])
    backslashes_int = packed_to_int(raw[CharClass.BACKSLASH])
    mask_result = compute_string_mask(quotes_int, backslashes_int, bits, carry, length=len(chunk))
    not_string = ~mask_result.in_string & ((1 << bits) - 1)

    words: dict[CharClass, np.ndarray] = {}
    for cls in STRUCTURAL_CLASSES:
        filtered = packed_to_int(raw[cls]) & not_string
        words[cls] = int_to_words(filtered, n_words)
    for derived, members in DERIVED_CLASSES.items():
        union = words[members[0]]
        for member in members[1:]:
            union = np.bitwise_or(union, words[member])
        words[derived] = union
    words[CharClass.QUOTE] = int_to_words(mask_result.unescaped_quotes, n_words)

    # The final chunk of a stream may end mid-string or mid-escape; the
    # carry computed over zero-padded bits is still correct because pad
    # bits contain no quotes or backslashes.
    return ChunkIndex(
        start=start,
        length=len(chunk),
        words=words,
        in_string=mask_result.in_string,
        carry_in=carry,
        carry_out=mask_result.carry_out,
    )


class BufferIndex:
    """Lazily-built, forward-chained chunk index over an in-memory buffer.

    Parameters
    ----------
    data:
        The JSON text (the paper preloads inputs into memory too).
    chunk_size:
        Characters per chunk; must be a multiple of 64.
    cache_chunks:
        LRU capacity in chunks, or ``None`` for unbounded retention
        (preprocessing baselines).  Streaming engines use a small value so
        index memory stays bounded.
    """

    def __init__(
        self,
        data: bytes,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int | None = 4,
    ) -> None:
        if chunk_size % _WORD_BITS:
            raise ValueError("chunk_size must be a multiple of 64")
        if cache_chunks is not None and cache_chunks < 2:
            raise ValueError("cache_chunks must be at least 2 (boundary straddling)")
        self.data = data
        self.chunk_size = chunk_size
        self.cache_chunks = cache_chunks
        self.n_chunks = max(1, -(-len(data) // chunk_size))
        self._cache: OrderedDict[int, ChunkIndex] = OrderedDict()
        # carry_out per built chunk id; tiny, retained forever so an evicted
        # chunk can be rebuilt without rescanning from the stream start.
        self._carries: list[StringCarry] = []
        # Observability counters (always on: one integer add per chunk
        # build/eviction, i.e. once per MiB of input).  An attached
        # engine copies the deltas into its MetricsRegistry per run.
        self.chunks_built = 0
        self.chunks_evicted = 0
        self.words_built = 0
        #: Optional repro.observe tracer; when enabled, every chunk
        #: build is wrapped in an ``index_build`` span.
        self.tracer = None

    def __len__(self) -> int:
        return len(self.data)

    def chunk_of(self, pos: int) -> int:
        """Chunk id containing absolute position ``pos``."""
        return pos // self.chunk_size

    # -- suspend/resume carry transfer ---------------------------------

    def carries_snapshot(self) -> list[tuple[int, int]]:
        """The cross-chunk string-mask carries of every chunk built so far,
        as plain ``(escape, in_string)`` pairs (JSON-serializable).

        This is the *only* state a fresh process needs to rebuild any
        already-visited chunk's bitmaps without rescanning the stream from
        byte zero — two bits per chunk, the suspension payoff of the
        forward-chained index design.
        """
        return [(carry.escape, carry.in_string) for carry in self._carries]

    def seed_carries(self, carries: Iterable[tuple[int, int]]) -> None:
        """Pre-load carries captured by :meth:`carries_snapshot`.

        Must be called on a fresh index (nothing built yet).  Afterwards
        chunk ``i`` for any ``i <= len(carries)`` is buildable directly
        from its own bytes, because its carry-in is already known.
        """
        if self._carries or self._cache:
            raise ValueError("seed_carries requires a fresh index (no chunks built)")
        carries = list(carries)
        if len(carries) > self.n_chunks:
            raise ValueError(
                f"{len(carries)} carries for an input of {self.n_chunks} chunks"
            )
        self._carries = [StringCarry(int(escape), int(in_string)) for escape, in_string in carries]

    def chunk_start(self, chunk_id: int) -> int:
        return chunk_id * self.chunk_size

    def get(self, chunk_id: int) -> ChunkIndex:
        """Return the index of ``chunk_id``, building forward as needed."""
        if not 0 <= chunk_id < self.n_chunks:
            raise IndexError(f"chunk {chunk_id} out of range (0..{self.n_chunks - 1})")
        cached = self._cache.get(chunk_id)
        if cached is not None:
            # LRU bookkeeping only matters once eviction is possible.
            if self.cache_chunks is not None and len(self._cache) >= self.cache_chunks:
                self._cache.move_to_end(chunk_id)
            return cached
        # The string-mask carries chain forward, so any chunk whose carry-in
        # is still unknown must be built first (forward scans need those
        # chunks' bitmaps anyway).
        for cid in range(len(self._carries), chunk_id):
            self._build(cid)
        return self._build(chunk_id)

    def _build_chunk(self, chunk: bytes, start: int, carry: StringCarry) -> Any:
        """Per-chunk build; subclasses may produce a different chunk type
        (see :class:`repro.bits.posindex.PositionBufferIndex`)."""
        return build_chunk_index(chunk, start, carry)

    def _build(self, chunk_id: int) -> Any:
        start = self.chunk_start(chunk_id)
        carry = INITIAL_CARRY if chunk_id == 0 else self._carries[chunk_id - 1]
        raw = self.data[start : start + self.chunk_size]
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("index_build", chunk=chunk_id, bytes=len(raw)):
                chunk = self._build_chunk(raw, start, carry)
        else:
            chunk = self._build_chunk(raw, start, carry)
        if chunk_id == len(self._carries):
            self._carries.append(chunk.carry_out)
        self.chunks_built += 1
        self.words_built += (chunk.length + _WORD_BITS - 1) // _WORD_BITS
        self._cache[chunk_id] = chunk
        self._cache.move_to_end(chunk_id)
        if self.cache_chunks is not None:
            while len(self._cache) > self.cache_chunks:
                self.chunks_evicted += 1
                self._cache.popitem(last=False)
        return chunk
