"""64-bit word primitives (paper Algorithm 3).

The paper manipulates *mirrored* metacharacter bitmaps: bit ``j`` of a word
corresponds to the ``j``-th character of the 64-character block, with the
first character in the least-significant bit.  Under that convention the
"next" occurrence of a metacharacter is the *lowest* set bit, which the
classic two's-complement tricks extract in O(1):

========================  =======================================
operation                  expression
========================  =======================================
isolate lowest set bit     ``b & -b``
clear lowest set bit       ``b & (b - 1)``
mask of bits below ``b``   ``b - 1``      (``b`` a single bit)
interval between bits      ``b_end - b_start``
count set bits             ``int.bit_count`` (POPCNT)
position of highest bit    ``int.bit_length`` (64 - LZCNT)
========================  =======================================

Python integers are arbitrary precision, so every helper masks its result
back to 64 bits where an overflow could occur.  The same functions are also
used by :mod:`repro.bits.strings` on whole-chunk integers, where the word
width is passed explicitly.
"""

from __future__ import annotations

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1

#: Alternating 0101... mask — even bit positions (paper's escape algorithm).
EVEN_BITS = 0x5555_5555_5555_5555
#: Alternating 1010... mask — odd bit positions.
ODD_BITS = 0xAAAA_AAAA_AAAA_AAAA


def lowest_bit(word: int) -> int:
    """Isolate the lowest set bit of ``word`` (0 if ``word`` is 0).

    This is the paper's ``bitmap & -bitmap`` (Algorithm 3, line 26): under
    the mirrored convention it selects the *next* metacharacter.
    """
    return word & -word


def clear_lowest_bit(word: int) -> int:
    """Clear the lowest set bit (Algorithm 3, line 27: ``b & (b - 1)``)."""
    return word & (word - 1)


def lowest_bit_position(word: int) -> int:
    """Position (0-based from LSB) of the lowest set bit.

    Equivalent to the TZCNT instruction.  ``word`` must be non-zero.
    """
    if word == 0:
        raise ValueError("lowest_bit_position of zero word")
    return (word & -word).bit_length() - 1


def highest_bit_position(word: int) -> int:
    """Position of the highest set bit (64 - LZCNT - 1 on a real CPU).

    This is ``intervalEnd`` in Algorithm 3 (lines 33-36): the paper counts
    leading zeros of the mirrored bitmap, then mirrors the count back.
    ``word`` must be non-zero.
    """
    if word == 0:
        raise ValueError("highest_bit_position of zero word")
    return word.bit_length() - 1


def mask_up_to(pos: int) -> int:
    """Mask with bits ``[0, pos]`` set (inclusive of ``pos``).

    Algorithm 3 lines 4-5 build this as ``b_start ^ (b_start - 1)`` where
    ``b_start = 1 << pos``; the closed form is identical.
    """
    b_start = 1 << pos
    return b_start ^ (b_start - 1)


def mask_from(pos: int) -> int:
    """64-bit mask with bits ``[pos, 63]`` set."""
    return WORD_MASK & ~((1 << pos) - 1)


def interval_between(b_start: int, b_end: int) -> int:
    """Interval bitmap covering ``[b_start, b_end)`` (Algorithm 3 line 8).

    ``b_start`` and ``b_end`` are single-bit masks with
    ``b_start < b_end``; the subtraction sets exactly the bits at and above
    ``b_start`` and strictly below ``b_end``.  ``b_end == 0`` means "no end
    in this word" and yields the open interval ``[b_start, 63]`` masked to
    the word width, matching how the paper extends an interval across
    words (Figure 8).
    """
    if b_end == 0:
        return WORD_MASK & ~(b_start - 1)
    return b_end - b_start


def interval_end(interval: int) -> int:
    """Position of the end of an interval bitmap (its highest set bit).

    Mirrors Algorithm 3's ``intervalEnd``: with mirrored bitmaps the paper
    uses LZCNT and mirrors; with Python ints ``bit_length`` is the same
    computation.
    """
    return highest_bit_position(interval)


def popcount(word: int) -> int:
    """Number of set bits (the POPCNT of Algorithm 4 line 11)."""
    return word.bit_count()


def select_kth_bit(word: int, k: int) -> int:
    """Position of the ``k``-th (1-based) lowest set bit of ``word``.

    Algorithm 4 line 15 uses this (``getPosition(bitmap, num)``) to locate
    the closing brace that ends the object.  Raises :class:`ValueError` if
    ``word`` has fewer than ``k`` set bits.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    w = word
    for _ in range(k - 1):
        w = w & (w - 1)
    if w == 0:
        raise ValueError(f"word has fewer than {k} set bits")
    return (w & -w).bit_length() - 1


def prefix_xor(word: int, bits: int = WORD_BITS) -> int:
    """Prefix XOR of a ``bits``-wide word (the CLMUL-by-all-ones trick).

    Bit ``i`` of the result is the XOR of bits ``0..i`` of ``word``.  Used
    to turn an unescaped-quote bitmap into an in-string mask
    (:mod:`repro.bits.strings`): between an opening and a closing quote the
    running parity of quotes seen so far is odd.

    Runs in ``log2(bits)`` shift-XOR steps, each bit-parallel across the
    whole word — the pure-Python stand-in for the carry-less multiply that
    simdjson uses.
    """
    mask = (1 << bits) - 1
    shift = 1
    while shift < bits:
        word = (word ^ (word << shift)) & mask
        shift *= 2
    return word & mask


def escaped_positions(backslashes: int, carry: int, bits: int = WORD_BITS) -> tuple[int, int]:
    """Mask of characters escaped by odd-length backslash runs.

    This is simdjson's ``find_odd_backslash_sequences`` (the construction
    the paper's ``buildStringBitmap`` cites from [34, 40]), generalized to a
    ``bits``-wide word so chunk-sized integers work too.

    A character is *escaped* when it is preceded by an odd-length run of
    backslashes; escaped quotes must not toggle the in-string state.  The
    algorithm classifies each run by the parity of its start position and
    lets an integer addition carry-propagate to the run end — all
    bit-parallel.

    Parameters
    ----------
    backslashes:
        Bitmap of backslash characters in this word.
    carry:
        1 if the previous word ended with an odd-length backslash run that
        escapes this word's first character, else 0.

    Returns
    -------
    (escaped, carry_out):
        ``escaped`` is the bitmap of escaped character positions within this
        word; ``carry_out`` feeds the next word.
    """
    if bits % 2:
        raise ValueError("word width must be even for run-parity chaining")
    mask = (1 << bits) - 1
    even_bits = EVEN_BITS
    width = 64
    while width < bits:
        even_bits = (even_bits | (even_bits << width)) & mask
        width *= 2
    even_bits &= mask
    odd_bits = ~even_bits & mask

    bs = backslashes & mask
    # Run starts: a backslash not preceded by a backslash.
    start_edges = bs & ~(bs << 1) & mask
    # XOR-ing the carry flips only bit 0's even/odd classification: a run
    # that continues from the previous word behaves as if it were one bit
    # longer, which is exactly what the pending odd-length prefix means.
    even_start_mask = even_bits ^ carry
    even_starts = start_edges & even_start_mask
    odd_starts = start_edges & ~even_start_mask & mask

    # Adding the start bit to the run lets the carry ripple to the first
    # position *after* the run; the parity of that landing position versus
    # the start classification reveals the run-length parity.
    even_carries = (bs + even_starts) & mask
    # repro: ignore[RS001] -- the overflow bit at position `bits` IS the
    # carry-out (read via '>> bits' below); odd_carries re-masks the sum.
    odd_sum = bs + odd_starts
    carry_out = int(odd_sum >> bits)
    odd_carries = (odd_sum | carry) & mask

    even_carry_ends = even_carries & ~bs & mask
    odd_carry_ends = odd_carries & ~bs & mask
    even_start_odd_end = even_carry_ends & odd_bits
    odd_start_even_end = odd_carry_ends & even_bits
    escaped = (even_start_odd_end | odd_start_even_end) & mask
    return escaped, carry_out
