"""Query/data advisor: how well will fast-forwarding work *here*?

Combines the static plan (:func:`repro.query.explain.explain`) with a
measured probe run (fast-forward ratios, trace) over a sample of the
caller's actual data — answering the practical question the paper's
Table 6 answers for its datasets: *which groups fire, and how much of
the stream do they skip?*

>>> from repro.analysis import analyze
>>> report = analyze(b'{"a": {"b": 1}, "big": [1,2,3,4]}', "$.a.b")
>>> 0 <= report.overall_ratio <= 1
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.jsonski import JsonSki
from repro.engine.stats import GROUPS
from repro.jsonpath.ast import Path
from repro.query.explain import QueryPlan, explain


@dataclass(frozen=True)
class AnalysisReport:
    """Static plan + measured fast-forward behaviour on a data sample."""

    query: str
    plan: QueryPlan
    sample_bytes: int
    n_matches: int
    ratios: dict[str, float]
    overall_ratio: float
    #: Number of individual fast-forward jumps the probe performed.
    n_events: int
    #: Mean jump length in bytes (long jumps amortize per-call cost).
    mean_jump: float

    def describe(self) -> str:
        lines = [self.plan.describe(), ""]
        lines.append(
            f"probe: {self.sample_bytes} bytes, {self.n_matches} matches, "
            f"{self.overall_ratio:.1%} fast-forwarded in {self.n_events} jumps "
            f"(mean jump {self.mean_jump:.0f} bytes)"
        )
        active = [f"{g}={self.ratios[g]:.1%}" for g in GROUPS if self.ratios[g] > 0.001]
        if active:
            lines.append("group breakdown: " + ", ".join(active))
        lines.append("assessment: " + self.assessment())
        return "\n".join(lines)

    def assessment(self) -> str:
        """One-line verdict in the vocabulary of the paper's Section 5.3."""
        if self.overall_ratio >= 0.9:
            detail = "streaming with fast-forwarding fits this workload well"
        elif self.overall_ratio >= 0.5:
            detail = "moderate skipping; expect a smaller edge over detailed streaming"
        else:
            detail = (
                "little to skip (the query touches most of the stream); "
                "a preprocessing index may serve repeated queries better"
            )
        if self.n_events and self.mean_jump < 16:
            detail += "; jumps are very short, so per-jump overhead matters"
        return detail


def analyze(sample: bytes | str, query: str | Path) -> AnalysisReport:
    """Run the advisor on a representative data sample."""
    engine = JsonSki(query, collect_stats=True)
    matches, events = engine.trace_run(sample)
    stats = engine.last_stats
    assert stats is not None
    skipped = sum(end - start for _, start, end in events)
    return AnalysisReport(
        query=engine.automaton.path.unparse(),
        plan=explain(engine.automaton.path),
        sample_bytes=stats.total_length,
        n_matches=len(matches),
        ratios={g: stats.ratio(g) for g in GROUPS},
        overall_ratio=stats.overall_ratio,
        n_events=len(events),
        mean_jump=(skipped / len(events)) if events else 0.0,
    )
