"""Actual multi-process record-parallel execution.

:mod:`repro.parallel.records_parallel` *simulates* N workers from
measured serial work (necessary on the single-core reproduction
machine, and what the Figure 12 benchmark uses).  On real multi-core
hosts this module runs the same scenario for real with a process pool:
records are batched, each worker process compiles the query once and
streams its batches, and match *values* come back pickled.

Only decoded values travel across the process boundary (raw-slice
matches would drag whole payload chunks along), so the result is a list
of values per record — enough for every aggregation use; use the
in-process engines when byte offsets are needed.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DeadlineExceededError
from repro.stream.records import RecordStream

#: Upper bound on one retry backoff sleep, jittered or not.
_BACKOFF_CAP = 1.0


def retry_delay(
    backoff: float,
    attempts: int,
    jitter: float = 1.0,
    rng: random.Random | None = None,
) -> float:
    """One restart-backoff sleep: capped exponential, with *full jitter*.

    The deterministic ``backoff * 2**attempts`` schedule retries every
    worker replaced by the same fault at the same instant — a thundering
    herd against whatever resource killed them.  ``jitter`` is the
    randomized fraction of the delay (AWS-style full jitter at the
    default ``1.0``: uniform in ``[0, delay]``; ``0.0`` reproduces the
    legacy deterministic schedule).  Pass a seeded ``rng`` for
    reproducible tests.
    """
    delay = min(backoff * (2 ** attempts), _BACKOFF_CAP)
    if jitter <= 0.0 or delay <= 0.0:
        return delay
    jitter = min(jitter, 1.0)
    if rng is None:
        rng = random
    return delay * (1.0 - jitter) + rng.uniform(0.0, delay * jitter)


def check_dispatch_deadline(limits) -> None:
    """Fail fast when ``limits`` carries an already-expired deadline.

    Fanning work out to a pool (or a new retry/resume segment) under an
    expired absolute deadline means every worker compiles, starts, and
    immediately aborts — pure overhead with a foregone conclusion.  The
    dispatchers call this before creating any worker; callers that want
    the work to run must convert the remaining budget into a fresh
    deadline first (``Limits.remaining()`` / ``Limits.with_deadline``).
    """
    if limits is not None and limits.deadline is not None and limits.deadline.expired():
        raise DeadlineExceededError(
            "deadline already expired at pool dispatch; refusing to fan out "
            "(rebuild a fresh deadline from the remaining budget instead)"
        )

# Per-process engine cache: (query text) -> engine, built lazily in the
# worker so the compiled automaton is reused across batches.
_WORKER_ENGINE = None
_WORKER_QUERY = None


def _run_batch(query: str, records: list[bytes]) -> list[list[Any]]:
    global _WORKER_ENGINE, _WORKER_QUERY
    if _WORKER_QUERY != query:
        from repro.registry import compile as compile_engine

        _WORKER_ENGINE = compile_engine(query)
        _WORKER_QUERY = query
    return [_WORKER_ENGINE.run(record).values() for record in records]


def _run_batch_metered(query: str, records: list[bytes]) -> tuple[list[list[Any]], dict]:
    """Like :func:`_run_batch`, plus this batch's metrics snapshot.

    Each batch gets a *fresh* worker-local registry (a worker processes
    many batches; per-batch registries keep the snapshots disjoint so the
    parent-side merge is a plain sum).  Only the plain-dict snapshot
    crosses the process boundary.
    """
    from repro.observe import MetricsRegistry
    from repro.registry import compile as compile_engine

    registry = MetricsRegistry()
    # A fresh engine per batch: the registry is baked into the engine (and
    # any filter delegate) at construction, so swapping registries on a
    # cached engine would mis-route counters.  Compilation is microseconds
    # against a batch of record scans.
    engine = compile_engine(query, metrics=registry)
    values = [engine.run(record).values() for record in records]
    registry.counter("parallel.batch_records").add(len(records))
    return values, registry.as_dict()


def run_records_pool(
    query: str,
    stream: RecordStream,
    n_workers: int,
    batch_size: int = 64,
    metrics=None,
) -> list[list[Any]]:
    """Evaluate ``query`` over every record using ``n_workers`` processes.

    Returns one list of match values per record, in record order.  With
    ``n_workers=1`` everything runs in-process (no pool overhead), which
    is also the deterministic reference the tests compare against.

    ``metrics``, when given a :class:`repro.observe.MetricsRegistry`,
    receives every worker's counters: each worker accumulates into a
    local registry, ships a plain-dict snapshot back with its batch, and
    the parent merges the snapshots with
    :meth:`~repro.observe.MetricsRegistry.merge_dict` — one registry at
    the end, as if the run had been serial.
    """
    records = [stream.record(i) for i in range(len(stream))]
    if metrics is None:
        if n_workers <= 1:
            return _run_batch(query, records)
        batches = [records[i : i + batch_size] for i in range(0, len(records), batch_size)]
        results: list[list[Any]] = []
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            for batch_result in pool.map(_run_batch, [query] * len(batches), batches):
                results.extend(batch_result)
        return results
    if n_workers <= 1:
        values, snapshot = _run_batch_metered(query, records)
        metrics.merge_dict(snapshot)
        return values
    batches = [records[i : i + batch_size] for i in range(0, len(records), batch_size)]
    results = []
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for values, snapshot in pool.map(_run_batch_metered, [query] * len(batches), batches):
            results.extend(values)
            metrics.merge_dict(snapshot)
    return results


# ---------------------------------------------------------------------------
# Fault-tolerant pool
# ---------------------------------------------------------------------------


def _run_batch_resilient(
    query: str, records: list[bytes], inject_faults: bool = False, limits=None
) -> list[tuple]:
    """Worker: evaluate each record, capturing per-record failures.

    Returns one tuple per record: ``("ok", values)`` or
    ``("err", error_class_name, message, position)``.  A record that
    merely raises stays a data point instead of a process casualty — only
    genuine interpreter/OS death (or the injected fault sentinels used by
    the tests) takes the worker down.

    ``limits`` (a :class:`repro.resilience.Limits`, pickled across the
    process boundary; ``Deadline`` anchors to ``CLOCK_MONOTONIC``, which
    is machine-wide, so an absolute budget survives the hop) is baked
    into the worker's engine so depth/size/deadline guards hold inside
    the pool exactly as they would in-process.
    """
    global _WORKER_ENGINE, _WORKER_QUERY
    if inject_faults:
        import os

        from repro.resilience.faults import CRASH_SENTINEL, HANG_SENTINEL, HANG_SECONDS

        for record in records:
            if record == CRASH_SENTINEL:
                os._exit(1)  # simulated hard crash: no exception, no cleanup
            if record == HANG_SENTINEL:
                time.sleep(HANG_SECONDS)
    from repro.errors import ReproError
    from repro.registry import compile as compile_engine

    if limits is not None:
        # Guarded runs skip the per-process cache: the deadline differs
        # per dispatch and compilation is microseconds against a batch.
        engine = compile_engine(query, limits=limits)
    else:
        if _WORKER_QUERY != query:
            _WORKER_ENGINE = compile_engine(query)
            _WORKER_QUERY = query
        engine = _WORKER_ENGINE
    out: list[tuple] = []
    for record in records:
        try:
            out.append(("ok", engine.run(record).values()))
        except ReproError as exc:
            out.append(("err", type(exc).__name__, str(exc), getattr(exc, "position", None)))
        except ValueError as exc:
            out.append(("err", "UndecodableMatch", str(exc), None))
    return out


@dataclass
class _Batch:
    start: int  # index of the first record in the stream
    records: list[bytes]
    attempts: int = 0


@dataclass
class PoolResult:
    """Outcome of one fault-tolerant pool run.

    ``values[i]`` is the list of match values for record ``i`` or
    ``None`` when the record was quarantined (see ``failures``).
    """

    values: list[list[Any] | None]
    failures: list = field(default_factory=list)
    worker_crashes: int = 0
    batch_retries: int = 0
    #: :class:`repro.checkpoint.runs.CheckpointInfo` when the run was
    #: checkpointed (``checkpoint=`` was passed); ``None`` otherwise.
    checkpoint: Any | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def records_ok(self) -> int:
        return sum(1 for v in self.values if v is not None)

    def describe(self) -> str:
        lines = [
            f"{self.records_ok}/{len(self.values)} records ok, "
            f"{len(self.failures)} quarantined, "
            f"{self.worker_crashes} worker crashes, "
            f"{self.batch_retries} batch retries"
        ]
        for failure in self.failures[:20]:
            lines.append(
                f"  record {failure.index}: [{failure.kind}] {failure.error}: {failure.message}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if a worker is wedged."""
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except OSError:  # already-dead process: nothing left to kill
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_records_pool_resilient(
    query: str,
    stream: RecordStream,
    n_workers: int = 2,
    batch_size: int = 64,
    max_retries: int = 2,
    timeout: float | None = None,
    backoff: float = 0.05,
    backoff_jitter: float = 1.0,
    backoff_rng: random.Random | None = None,
    metrics=None,
    inject_faults: bool = False,
    checkpoint=None,
    checkpoint_every: int = 1000,
    resume: bool = False,
    emitter=None,
    stop=None,
    limits=None,
) -> PoolResult:
    """Pool execution that survives crashing workers and poison records.

    The contract of :func:`run_records_pool` hardened for hostile input:

    - a record that raises a :class:`~repro.errors.ReproError` is
      captured *inside* the worker and quarantined (``kind="error"``) —
      it never takes a batch down;
    - a worker that dies (``BrokenProcessPool``) or exceeds ``timeout``
      is replaced by a fresh pool; the affected batches are retried with
      exponential ``backoff``.  A batch that keeps killing workers is
      bisected until the culprit record is isolated and quarantined
      (``kind="crash"`` / ``"timeout"``), so innocent records in the
      same batch still produce results;
    - the run always returns a :class:`PoolResult` with partial values
      plus a structured failure report — no raw tracebacks, no lost
      batches.

    ``inject_faults=True`` arms the test-only fault sentinels
    (:data:`repro.resilience.faults.CRASH_SENTINEL` /
    :data:`~repro.resilience.faults.HANG_SENTINEL`).  ``metrics``
    receives ``pool.worker_crashes``, ``pool.batch_retries``,
    ``pool.poison_records``, ``pool.records_ok`` and
    ``pool.records_failed`` counters.

    ``backoff_jitter`` randomizes each restart sleep with full jitter
    (see :func:`retry_delay`) so simultaneously-replaced workers do not
    retry in lockstep; ``0.0`` restores the deterministic schedule and a
    seeded ``backoff_rng`` makes the jittered schedule reproducible.

    ``limits`` threads the uniform resource guards into every worker's
    engine.  A ``limits.deadline`` that is *already expired* fails the
    dispatch immediately with
    :class:`~repro.errors.DeadlineExceededError` — no pool is created,
    no batch is pickled; a deadline that expires mid-run stops further
    batch scheduling and quarantines the unprocessed records instead of
    fanning out work every worker would abort.

    ``checkpoint`` (a path or :class:`~repro.checkpoint.CheckpointStore`)
    makes the run resumable in segments of ``checkpoint_every`` records;
    see :func:`repro.checkpoint.runs.checkpointed_pool` for the
    ``resume`` / ``emitter`` / ``stop`` semantics.
    """
    from repro.resilience.recovery import RecordFailure

    check_dispatch_deadline(limits)
    if checkpoint is not None:
        from repro.checkpoint.runs import checkpointed_pool

        return checkpointed_pool(
            query,
            stream,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            emitter=emitter,
            stop=stop,
            n_workers=n_workers,
            batch_size=batch_size,
            max_retries=max_retries,
            timeout=timeout,
            backoff=backoff,
            backoff_jitter=backoff_jitter,
            backoff_rng=backoff_rng,
            metrics=metrics,
            inject_faults=inject_faults,
            limits=limits,
        )

    records = [stream.record(i) for i in range(len(stream))]
    n = len(records)
    result = PoolResult(values=[None] * n)

    def harvest(start: int, out: list[tuple]) -> None:
        for offset, item in enumerate(out):
            idx = start + offset
            if item[0] == "ok":
                result.values[idx] = item[1]
            else:
                result.failures.append(
                    RecordFailure(idx, "error", item[1], item[2], item[3])
                )

    use_pool = inject_faults or n_workers > 1
    if not use_pool:
        harvest(0, _run_batch_resilient(query, records, limits=limits))
    else:
        pending: deque[_Batch] = deque(
            _Batch(i, records[i : i + batch_size])
            for i in range(0, n, batch_size)
        )
        pool: ProcessPoolExecutor | None = None
        try:
            while pending:
                if limits is not None and limits.deadline is not None and limits.deadline.expired():
                    # Budget spent mid-run: quarantine what's left instead of
                    # dispatching batches every worker would abort anyway.
                    for batch in pending:
                        for offset in range(len(batch.records)):
                            result.failures.append(
                                RecordFailure(
                                    batch.start + offset,
                                    "error",
                                    "DeadlineExceededError",
                                    "deadline expired before batch dispatch",
                                )
                            )
                    pending.clear()
                    break
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=max(1, n_workers))
                # Submit every pending batch so healthy workers stay busy;
                # collect in order so a broken pool is noticed deterministically.
                inflight = [
                    (
                        batch,
                        pool.submit(
                            _run_batch_resilient, query, batch.records, inject_faults, limits
                        ),
                    )
                    for batch in pending
                ]
                pending.clear()
                for pos, (batch, future) in enumerate(inflight):
                    try:
                        harvest(batch.start, future.result(timeout=timeout))
                    except (BrokenProcessPool, FutureTimeoutError, OSError) as exc:
                        kind = "timeout" if isinstance(exc, FutureTimeoutError) else "crash"
                        result.worker_crashes += 1
                        if pool is not None:
                            _kill_pool(pool)
                            pool = None
                        if backoff:
                            time.sleep(
                                retry_delay(backoff, batch.attempts, backoff_jitter, backoff_rng)
                            )
                        if len(batch.records) > 1:
                            # Bisect: isolate the culprit, free the innocents.
                            mid = len(batch.records) // 2
                            pending.append(
                                _Batch(batch.start, batch.records[:mid], batch.attempts + 1)
                            )
                            pending.append(
                                _Batch(batch.start + mid, batch.records[mid:], batch.attempts + 1)
                            )
                            result.batch_retries += 1
                        elif batch.attempts < max_retries:
                            pending.append(
                                _Batch(batch.start, batch.records, batch.attempts + 1)
                            )
                            result.batch_retries += 1
                        elif _isolated_trial(query, batch, timeout, inject_faults, harvest, limits):
                            # Exonerated: every attempt so far may have been
                            # collateral damage — BrokenProcessPool fails all
                            # in-flight futures, so an innocent record can
                            # burn its retries on a *sibling's* crash.  Only
                            # a record that also kills a private one-worker
                            # pool is quarantined.
                            result.batch_retries += 1
                        else:
                            result.failures.append(
                                RecordFailure(
                                    batch.start,
                                    kind,
                                    type(exc).__name__,
                                    f"record repeatedly killed its worker ({kind})",
                                )
                            )
                        # Remaining in-flight futures share the dead pool:
                        # requeue them for the fresh one without burning an
                        # attempt (they are casualties, not suspects).
                        for other, other_future in inflight[pos + 1 :]:
                            if not _harvest_if_done(other, other_future, harvest):
                                pending.append(other)
                        break
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    if metrics is not None:
        crashes = sum(1 for f in result.failures if f.kind in ("crash", "timeout"))
        poison = sum(1 for f in result.failures if f.kind == "error")
        metrics.counter("pool.worker_crashes").add(result.worker_crashes)
        metrics.counter("pool.batch_retries").add(result.batch_retries)
        metrics.counter("pool.poison_records").add(poison)
        metrics.counter("pool.crashed_records").add(crashes)
        metrics.counter("pool.records_ok").add(result.records_ok)
        metrics.counter("pool.records_failed").add(len(result.failures))
    return result


def _isolated_trial(query: str, batch: _Batch, timeout, inject_faults, harvest, limits=None) -> bool:
    """Final verdict for a suspect record: run it alone in a fresh
    single-worker pool, where no sibling can take the worker down.
    Harvests the result and returns True if the record survives; returns
    False (quarantine is warranted) if it kills even its private worker.
    """
    trial = ProcessPoolExecutor(max_workers=1)
    try:
        future = trial.submit(_run_batch_resilient, query, batch.records, inject_faults, limits)
        out = future.result(timeout=timeout)
    except (BrokenProcessPool, FutureTimeoutError, OSError):
        return False
    finally:
        _kill_pool(trial)
    harvest(batch.start, out)
    return True


def _harvest_if_done(batch: _Batch, future, harvest) -> bool:
    """Salvage a sibling future's result if it finished before the pool died."""
    if future.done() and not future.cancelled() and future.exception() is None:
        harvest(batch.start, future.result())
        return True
    return False
