"""Actual multi-process record-parallel execution.

:mod:`repro.parallel.records_parallel` *simulates* N workers from
measured serial work (necessary on the single-core reproduction
machine, and what the Figure 12 benchmark uses).  On real multi-core
hosts this module runs the same scenario for real with a process pool:
records are batched, each worker process compiles the query once and
streams its batches, and match *values* come back pickled.

Only decoded values travel across the process boundary (raw-slice
matches would drag whole payload chunks along), so the result is a list
of values per record — enough for every aggregation use; use the
in-process engines when byte offsets are needed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.stream.records import RecordStream

# Per-process engine cache: (query text) -> engine, built lazily in the
# worker so the compiled automaton is reused across batches.
_WORKER_ENGINE = None
_WORKER_QUERY = None


def _run_batch(query: str, records: list[bytes]) -> list[list[Any]]:
    global _WORKER_ENGINE, _WORKER_QUERY
    if _WORKER_QUERY != query:
        from repro.engine.jsonski import JsonSki

        _WORKER_ENGINE = JsonSki(query)
        _WORKER_QUERY = query
    return [_WORKER_ENGINE.run(record).values() for record in records]


def run_records_pool(
    query: str,
    stream: RecordStream,
    n_workers: int,
    batch_size: int = 64,
) -> list[list[Any]]:
    """Evaluate ``query`` over every record using ``n_workers`` processes.

    Returns one list of match values per record, in record order.  With
    ``n_workers=1`` everything runs in-process (no pool overhead), which
    is also the deterministic reference the tests compare against.
    """
    records = [stream.record(i) for i in range(len(stream))]
    if n_workers <= 1:
        return _run_batch(query, records)
    batches = [records[i : i + batch_size] for i in range(0, len(records), batch_size)]
    results: list[list[Any]] = []
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for batch_result in pool.map(_run_batch, [query] * len(batches), batches):
            results.extend(batch_result)
    return results
