"""Actual multi-process record-parallel execution.

:mod:`repro.parallel.records_parallel` *simulates* N workers from
measured serial work (necessary on the single-core reproduction
machine, and what the Figure 12 benchmark uses).  On real multi-core
hosts this module runs the same scenario for real with a process pool:
records are batched, each worker process compiles the query once and
streams its batches, and match *values* come back pickled.

Only decoded values travel across the process boundary (raw-slice
matches would drag whole payload chunks along), so the result is a list
of values per record — enough for every aggregation use; use the
in-process engines when byte offsets are needed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.stream.records import RecordStream

# Per-process engine cache: (query text) -> engine, built lazily in the
# worker so the compiled automaton is reused across batches.
_WORKER_ENGINE = None
_WORKER_QUERY = None


def _run_batch(query: str, records: list[bytes]) -> list[list[Any]]:
    global _WORKER_ENGINE, _WORKER_QUERY
    if _WORKER_QUERY != query:
        from repro.engine.jsonski import JsonSki

        _WORKER_ENGINE = JsonSki(query)
        _WORKER_QUERY = query
    return [_WORKER_ENGINE.run(record).values() for record in records]


def _run_batch_metered(query: str, records: list[bytes]) -> tuple[list[list[Any]], dict]:
    """Like :func:`_run_batch`, plus this batch's metrics snapshot.

    Each batch gets a *fresh* worker-local registry (a worker processes
    many batches; per-batch registries keep the snapshots disjoint so the
    parent-side merge is a plain sum).  Only the plain-dict snapshot
    crosses the process boundary.
    """
    from repro.engine.jsonski import JsonSki
    from repro.observe import MetricsRegistry

    registry = MetricsRegistry()
    # A fresh engine per batch: the registry is baked into the engine (and
    # any filter delegate) at construction, so swapping registries on a
    # cached engine would mis-route counters.  Compilation is microseconds
    # against a batch of record scans.
    engine = JsonSki(query, metrics=registry)
    values = [engine.run(record).values() for record in records]
    registry.counter("parallel.batch_records").add(len(records))
    return values, registry.as_dict()


def run_records_pool(
    query: str,
    stream: RecordStream,
    n_workers: int,
    batch_size: int = 64,
    metrics=None,
) -> list[list[Any]]:
    """Evaluate ``query`` over every record using ``n_workers`` processes.

    Returns one list of match values per record, in record order.  With
    ``n_workers=1`` everything runs in-process (no pool overhead), which
    is also the deterministic reference the tests compare against.

    ``metrics``, when given a :class:`repro.observe.MetricsRegistry`,
    receives every worker's counters: each worker accumulates into a
    local registry, ships a plain-dict snapshot back with its batch, and
    the parent merges the snapshots with
    :meth:`~repro.observe.MetricsRegistry.merge_dict` — one registry at
    the end, as if the run had been serial.
    """
    records = [stream.record(i) for i in range(len(stream))]
    if metrics is None:
        if n_workers <= 1:
            return _run_batch(query, records)
        batches = [records[i : i + batch_size] for i in range(0, len(records), batch_size)]
        results: list[list[Any]] = []
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            for batch_result in pool.map(_run_batch, [query] * len(batches), batches):
                results.extend(batch_result)
        return results
    if n_workers <= 1:
        values, snapshot = _run_batch_metered(query, records)
        metrics.merge_dict(snapshot)
        return values
    batches = [records[i : i + batch_size] for i in range(0, len(records), batch_size)]
    results = []
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for values, snapshot in pool.map(_run_batch_metered, [query] * len(batches), batches):
            results.extend(values)
            metrics.merge_dict(snapshot)
    return results
