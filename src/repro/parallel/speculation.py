"""Speculative chunk-parallel processing of a single large record.

Reproduces the scenario behind the paper's JPStream(16) and Pison(16)
bars in Figure 10: a single record has sequential dependences, which
those systems break with speculative parallelism.  Here the record is
partitioned at top-level element boundaries (the serial pre-pass a real
implementation performs — its cost is measured and charged to the run),
each chunk is really executed through the chosen engine, and the
N-worker wall-clock is the measured-work makespan.

Queries whose first step under the partition point carries an index
constraint (e.g. WP2's ``$[10:21]``) are rewritten per chunk so global
element indices stay correct.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.output import MatchList
from repro.jsonpath.ast import Index, MultiIndex, Path, Slice, Step
from repro.jsonpath.parser import parse_path
from repro.parallel.chunking import ChunkInput, split_top_level
from repro.parallel.simulator import MakespanResult, makespan


@dataclass
class SpeculativeRunResult:
    """Matches plus timing of a simulated chunk-parallel run."""

    matches: MatchList
    result: MakespanResult
    n_chunks: int

    @property
    def wall_seconds(self) -> float:
        return self.result.wall_seconds

    @property
    def speedup(self) -> float:
        return self.result.speedup


def _rewrite_query(path: Path, depth: int, chunk: ChunkInput) -> Path:
    """Localize the index constraint at ``depth`` to a chunk's elements."""
    if depth >= len(path.steps):
        return path
    step: Step = path.steps[depth]
    off, cnt = chunk.element_offset, chunk.n_elements
    if isinstance(step, Index):
        if off <= step.index < off + cnt:
            new: Step = Index(step.index - off)
        else:
            # No overlap: the chunk yields no matches, but the worker
            # still pays its processing cost (JPStream parses everything
            # regardless of the query; Pison still builds its index).
            new = Index(cnt + 1)
    elif isinstance(step, Slice):
        lo = max(step.start, off)
        hi = off + cnt if step.stop is None else min(step.stop, off + cnt)
        if lo >= hi:
            new = Index(cnt + 1)
        else:
            new = Slice(lo - off, hi - off)
    elif isinstance(step, MultiIndex):
        local = tuple(i - off for i in step.indices if off <= i < off + cnt)
        if not local:
            new = Index(cnt + 1)
        elif len(local) == 1:
            new = Index(local[0])
        else:
            new = MultiIndex(local)
    else:
        return path  # wildcard and friends need no localization
    return Path(path.steps[:depth] + (new,) + path.steps[depth + 1 :])


def speculative_large_run(
    engine_factory: Callable[[Path], object],
    data: bytes,
    query: str | Path,
    array_path: str,
    n_workers: int,
    chunks_per_worker: int = 4,
    timer: Callable[[], float] = time.perf_counter,
) -> SpeculativeRunResult:
    """Run ``query`` over one large record with simulated chunk
    parallelism.

    ``array_path`` names the record's top-level unit array (``'$'`` when
    the root itself is the array; ``'$.pd'`` style otherwise) — the axis
    along which JPStream/Pison's speculation recovers data parallelism.
    ``engine_factory`` builds an engine from a :class:`Path` (e.g.
    ``lambda p: JPStream(p)``).
    """
    if isinstance(query, str):
        query = parse_path(query)
    t0 = timer()
    split = split_top_level(data, array_path)
    chunks = split.chunk_inputs(n_workers * chunks_per_worker)
    partition_seconds = timer() - t0

    # Depth (step index) at which elements of the unit array are selected.
    depth = len(split.array_path.steps)
    engines: dict[str, object] = {}
    matches = MatchList()
    task_seconds: list[float] = []
    for chunk in chunks:
        local = _rewrite_query(query, depth, chunk)
        key = local.unparse()
        engine = engines.get(key)
        if engine is None:
            engine = engines[key] = engine_factory(local)
        t0 = timer()
        matches.extend(engine.run(chunk.data))
        task_seconds.append(timer() - t0)
    return SpeculativeRunResult(
        matches=matches,
        result=makespan(task_seconds, n_workers, serial_seconds=partition_seconds),
        n_chunks=len(chunks),
    )
