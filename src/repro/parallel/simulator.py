"""Makespan computation over measured task times.

Given the measured serial duration of each task, the simulator computes
the wall-clock a pool of ``n_workers`` would achieve under dynamic
scheduling (each idle worker takes the next task — the paper's "each
thread is assigned to process one small record each time"), plus any
measured serial sections (partitioning, merge).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class MakespanResult:
    """Outcome of one simulated parallel execution."""

    n_workers: int
    #: Simulated parallel wall-clock (serial sections included).
    wall_seconds: float
    #: Sum of all task durations (the 1-worker cost of the parallel part).
    work_seconds: float
    #: Measured serial sections (partition/merge) included in wall_seconds.
    serial_seconds: float
    #: Per-worker busy time.
    worker_seconds: tuple[float, ...]

    @property
    def speedup(self) -> float:
        """Speedup over running everything on one worker."""
        serial_total = self.work_seconds + self.serial_seconds
        return serial_total / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def efficiency(self) -> float:
        """Speedup normalized by worker count."""
        return self.speedup / self.n_workers


def makespan(
    task_seconds: Sequence[float],
    n_workers: int,
    serial_seconds: float = 0.0,
) -> MakespanResult:
    """Dynamic-scheduling makespan of ``task_seconds`` on ``n_workers``.

    Tasks are taken in order by whichever worker becomes idle first —
    a work-queue discipline, matching both the record-parallel scenario
    and chunk-parallel speculation (chunks are claimed in stream order).
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    busy = [0.0] * n_workers
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    for seconds in task_seconds:
        if seconds < 0:
            raise ValueError("task durations must be non-negative")
        free_at, worker = heapq.heappop(heap)
        busy[worker] += seconds
        heapq.heappush(heap, (free_at + seconds, worker))
    finish = max(free_at for free_at, _ in heap)
    return MakespanResult(
        n_workers=n_workers,
        wall_seconds=finish + serial_seconds,
        work_seconds=float(sum(task_seconds)),
        serial_seconds=serial_seconds,
        worker_seconds=tuple(busy),
    )
