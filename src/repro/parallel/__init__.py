"""Parallel-execution substrate for the multi-worker experiments.

The paper's Figure 12 (16 threads over small records) and the
JPStream(16)/Pison(16) bars of Figure 10 (speculative parallelism inside
one large record) need multiple cores; this reproduction runs on whatever
the host has (often a single core), so parallel execution is *simulated
from measured work*: every partition of the work is really executed and
timed serially, and the N-worker wall-clock is the makespan of
dynamically scheduling those measured tasks (plus the measured serial
sections).  Scaling shape therefore comes from genuine load balance and
genuine serial overheads, not from an analytic model.
"""

from repro.parallel.chunking import TopLevelSplit, split_top_level
from repro.parallel.real_pool import PoolResult, run_records_pool, run_records_pool_resilient
from repro.parallel.records_parallel import ParallelRunResult, parallel_records_run
from repro.parallel.simulator import MakespanResult, makespan
from repro.parallel.speculation import speculative_large_run

__all__ = [
    "MakespanResult",
    "ParallelRunResult",
    "PoolResult",
    "TopLevelSplit",
    "makespan",
    "parallel_records_run",
    "run_records_pool",
    "run_records_pool_resilient",
    "speculative_large_run",
    "split_top_level",
]
