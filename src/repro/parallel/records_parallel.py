"""Record-parallel execution over small-record streams (Figure 12).

"Many small records can already be processed in parallel" (paper
Section 5.1): records are independent, so each virtual worker pulls the
next record from a shared queue.  Every record is really executed (and
its matches collected); the parallel wall-clock is the measured-work
makespan from :mod:`repro.parallel.simulator`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.output import MatchList
from repro.parallel.simulator import MakespanResult, makespan
from repro.stream.records import RecordStream


@dataclass
class ParallelRunResult:
    """Matches plus timing of a simulated record-parallel run."""

    matches: MatchList
    result: MakespanResult

    @property
    def wall_seconds(self) -> float:
        return self.result.wall_seconds

    @property
    def speedup(self) -> float:
        return self.result.speedup


def parallel_records_run(
    engine: object,
    stream: RecordStream,
    n_workers: int,
    timer: Callable[[], float] = time.perf_counter,
    metrics=None,
) -> ParallelRunResult:
    """Process every record of ``stream`` with ``engine``; report the
    ``n_workers`` makespan.

    ``engine`` is any object with a ``run(record) -> MatchList`` method
    (all engines in this package qualify).  ``metrics``, when given a
    :class:`repro.observe.MetricsRegistry`, accumulates a
    ``parallel.records`` counter, a ``parallel.task_seconds`` histogram
    of per-record work, and the engine's own per-run fast-forward
    counters (merged from ``engine.last_stats`` after each record).
    """
    matches = MatchList()
    task_seconds: list[float] = []
    for i in range(len(stream)):
        record = stream.record(i)
        t0 = timer()
        matches.extend(engine.run(record))
        task_seconds.append(timer() - t0)
        if metrics is not None:
            last = getattr(engine, "last_stats", None)
            if last is not None:
                metrics.merge(last.registry)
    if metrics is not None:
        metrics.counter("parallel.records").add(len(stream))
        metrics.counter("parallel.workers").set(n_workers)
        hist = metrics.histogram("parallel.task_seconds")
        for seconds in task_seconds:
            hist.observe(seconds)
    return ParallelRunResult(matches=matches, result=makespan(task_seconds, n_workers))
