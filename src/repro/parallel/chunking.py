"""Top-level chunking of one large record (speculative parallelism).

JPStream and Pison process a *single* large record in parallel by
splitting it into chunks and resolving each chunk's entry context
(string state, nesting depth) speculatively or with cheap pre-passes.
This module performs that partitioning exactly: the bit-parallel index
locates the record's top-level unit array and each element's span, and
chunk inputs are re-wrapped slices whose entry context is correct by
construction.  The partitioning cost is what a real implementation pays
serially before workers start, so callers time it and charge it to the
parallel run (see :mod:`repro.parallel.speculation`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.fastforward import FastForwarder, make_fastforwarder
from repro.errors import JsonSyntaxError, UnsupportedQueryError
from repro.jsonpath.ast import Child, Path
from repro.jsonpath.parser import parse_path
from repro.stream.buffer import StreamBuffer

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COMMA, _QUOTE = 0x2C, 0x22


@dataclass(frozen=True)
class ChunkInput:
    """One re-wrapped chunk: a standalone record covering a contiguous
    block of top-level elements."""

    data: bytes
    #: Global index of the first element in this chunk.
    element_offset: int
    n_elements: int
    #: True for the chunk that carries the record's real prefix (any
    #: attributes before the unit array, e.g. NSPL's ``mt``).
    has_real_prefix: bool


@dataclass
class TopLevelSplit:
    """Result of locating the unit array and its element spans."""

    data: bytes
    array_path: Path
    #: ``[start, end)`` of each top-level element's text.
    element_spans: list[tuple[int, int]]
    #: Offset of the unit array's ``[``.
    array_open: int
    #: Offset of the unit array's ``]``.
    array_close: int

    def _minimal_prefix_suffix(self) -> tuple[bytes, bytes]:
        """Synthetic wrapper reproducing the array's nesting context."""
        prefix = b""
        for step in self.array_path.steps:
            name = step.name.replace("\\", "\\\\").replace('"', '\\"')
            prefix += b'{"' + name.encode("utf-8") + b'":'
        return prefix + b"[", b"]" + b"}" * len(self.array_path.steps)

    def chunk_inputs(self, n_chunks: int) -> list[ChunkInput]:
        """Partition the elements into up to ``n_chunks`` contiguous,
        byte-balanced blocks and re-wrap each as a standalone record.

        Chunk 0 keeps the record's real prefix (everything up to and
        including the array ``[``) and the last chunk keeps the real
        suffix, so attributes outside the unit array stay queryable.
        """
        spans = self.element_spans
        if not spans:
            return [ChunkInput(self.data, 0, 0, True)]
        n_chunks = max(1, min(n_chunks, len(spans)))
        total_bytes = spans[-1][1] - spans[0][0]
        target = total_bytes / n_chunks
        mini_prefix, mini_suffix = self._minimal_prefix_suffix()
        real_prefix = self.data[: self.array_open + 1]
        real_suffix = self.data[self.array_close :]

        chunks: list[ChunkInput] = []
        i = 0
        for c in range(n_chunks):
            if i >= len(spans):
                break
            j = i
            budget = (c + 1) * target + spans[0][0]
            while j < len(spans) and (j == i or spans[j][1] <= budget):
                j += 1
            body = self.data[spans[i][0] : spans[j - 1][1]]
            last = j >= len(spans)
            chunk_data = (
                (real_prefix if c == 0 else mini_prefix)
                + body
                + (real_suffix if last else mini_suffix)
            )
            chunks.append(ChunkInput(chunk_data, i, j - i, has_real_prefix=(c == 0)))
            i = j
        return chunks


def split_top_level(data: bytes, array_path: str | Path, mode: str = "vector") -> TopLevelSplit:
    """Locate the unit array named by ``array_path`` and enumerate its
    element spans with the bit-parallel fast-forward machinery.

    ``array_path`` must be ``$`` (the record root is the array) or a
    chain of child steps (e.g. ``$.pd``).
    """
    if isinstance(array_path, str):
        steps = () if array_path.strip() == "$" else parse_path(array_path).steps
    else:
        steps = array_path.steps
    if not all(isinstance(s, Child) for s in steps):
        raise UnsupportedQueryError("array_path must be '$' or a chain of child steps")
    buffer = StreamBuffer(data, mode=mode)
    ff = make_fastforwarder(buffer)
    pos = buffer.skip_ws(0)

    # Navigate the child chain to the unit array.
    for step in steps:
        if buffer.byte_at(pos) != _LBRACE:
            raise JsonSyntaxError(f"expected object while resolving {step.name!r}", pos)
        pos = _find_attr(buffer, ff, pos, step.name)
    if buffer.byte_at(pos) != _LBRACKET:
        raise JsonSyntaxError("partition path does not lead to an array", pos)
    array_open = pos

    # Enumerate element spans.
    spans: list[tuple[int, int]] = []
    cur = buffer.skip_ws(array_open + 1)
    while True:
        byte = buffer.byte_at(cur)
        if byte == _RBRACKET:
            array_close = cur
            break
        start = cur
        if byte == _LBRACE:
            end = ff.go_over_obj(cur)
        elif byte == _LBRACKET:
            end = ff.go_over_ary(cur)
        else:
            delim = ff.go_over_pri(cur, in_object=False)
            end = buffer.rstrip_ws(cur, delim)
        spans.append((start, end))
        cur = buffer.skip_ws(end)
        byte = buffer.byte_at(cur)
        if byte == _COMMA:
            cur = buffer.skip_ws(cur + 1)
        elif byte == _RBRACKET:
            array_close = cur
            break
        else:
            raise JsonSyntaxError("expected ',' or ']' in unit array", cur)

    return TopLevelSplit(
        data=data,
        array_path=Path(tuple(steps)),
        element_spans=spans,
        array_open=array_open,
        array_close=array_close,
    )


def _find_attr(buffer: StreamBuffer, ff: FastForwarder, obj_pos: int, name: str) -> int:
    """Position of the value of attribute ``name`` in the object at
    ``obj_pos``, skipping other attributes with fast-forwards."""
    from repro.bits.classify import CharClass
    from repro.bits.scanner import NOT_FOUND

    pos = buffer.skip_ws(obj_pos + 1)
    scanner = buffer.scanner
    while buffer.byte_at(pos) != _RBRACE:
        if buffer.byte_at(pos) != _QUOTE:
            raise JsonSyntaxError("expected attribute name", pos)
        close = scanner.find_next(CharClass.QUOTE, pos + 1)
        colon = scanner.find_next(CharClass.COLON, close + 1)
        if close == NOT_FOUND or colon == NOT_FOUND:
            raise JsonSyntaxError("malformed attribute", pos)
        attr = buffer.slice(pos + 1, close).decode("utf-8", errors="replace")
        vstart = buffer.skip_ws(colon + 1)
        if attr == name:
            return vstart
        byte = buffer.byte_at(vstart)
        if byte == _LBRACE:
            after = ff.go_over_obj(vstart)
        elif byte == _LBRACKET:
            after = ff.go_over_ary(vstart)
        else:
            after = ff.go_over_pri(vstart, in_object=True)
        after = buffer.skip_ws(after)
        if buffer.byte_at(after) == _COMMA:
            pos = buffer.skip_ws(after + 1)
        elif buffer.byte_at(after) == _RBRACE:
            break
        else:
            raise JsonSyntaxError("expected ',' or '}' in object", after)
    raise JsonSyntaxError(f"attribute {name!r} not found while partitioning", obj_pos)
