"""On-disk materialization and caching of generated datasets.

Benchmarks run the same inputs through many engines; the writer caches
each ``(dataset, format, size, seed)`` combination under a cache
directory (default ``~/.cache/repro-jsonski``, override with the
``REPRO_DATA_DIR`` environment variable) so generation cost is paid once
per session, not once per engine.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from repro.data.datasets import large_record, record_stream
from repro.storage import atomic_write
from repro.stream.records import RecordStream


def cache_dir() -> Path:
    """Resolve (and create) the dataset cache directory."""
    root = os.environ.get("REPRO_DATA_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro-jsonski"
    path.mkdir(parents=True, exist_ok=True)
    return path


def materialize_large(name: str, target_bytes: int, seed: int = 0) -> Path:
    """Write (or reuse) the large-record file for a dataset; returns its
    path."""
    path = cache_dir() / f"{name}-large-{target_bytes}-{seed}.json"
    if not path.exists():
        atomic_write(path, large_record(name, target_bytes, seed), kind="dataset")
    return path


def materialize_records(name: str, target_bytes: int, seed: int = 0) -> tuple[Path, Path]:
    """Write (or reuse) the small-records payload + offset files.

    Mirrors the paper's storage layout: the records in one array plus "an
    offset array for starting positions".  Returns
    ``(payload_path, offsets_path)``.
    """
    payload_path = cache_dir() / f"{name}-records-{target_bytes}-{seed}.jsonl"
    offsets_path = payload_path.with_suffix(".offsets.npy")
    if not (payload_path.exists() and offsets_path.exists()):
        stream = record_stream(name, target_bytes, seed)
        buffer = io.BytesIO()
        np.save(buffer, stream.offsets)
        atomic_write(offsets_path, buffer.getvalue(), kind="dataset")
        # Payload lands last: its presence implies the offsets are ready.
        atomic_write(payload_path, stream.payload, kind="dataset")
    return payload_path, offsets_path


def load_large(name: str, target_bytes: int, seed: int = 0) -> bytes:
    """Materialize + read the large-record input."""
    return materialize_large(name, target_bytes, seed).read_bytes()


def load_records(name: str, target_bytes: int, seed: int = 0) -> RecordStream:
    """Materialize + load the small-records input."""
    payload_path, offsets_path = materialize_records(name, target_bytes, seed)
    return RecordStream(payload_path.read_bytes(), np.load(str(offsets_path)))
