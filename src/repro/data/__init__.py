"""Synthetic evaluation datasets (paper Tables 4-5).

The paper evaluates on six proprietary real-world dumps (Twitter, Best
Buy, Google Maps Directions, NSPL, Walmart, Wikidata).  This package
generates schema-faithful synthetic equivalents, sized on demand and
deterministic under a seed, in both of the paper's formats: one single
large record, or a sequence of small records with an offset array.

The Table 5 queries are carried verbatim (the paper's abbreviated field
names — ``pd``, ``cp``, ``rt``, ``lg`` … — are used as the generators'
actual field names so the query text matches the paper exactly).
"""

from repro.data.datasets import DATASETS, QuerySpec, dataset, large_record, record_stream
from repro.data.stats import structural_stats
from repro.data.synth import random_json, random_path

__all__ = [
    "DATASETS",
    "QuerySpec",
    "dataset",
    "large_record",
    "random_json",
    "random_path",
    "record_stream",
    "structural_stats",
]
