"""Generic random JSON generation, for fuzzing and property-based tests.

Unlike :mod:`repro.data.datasets` (schema-faithful evaluation inputs),
this module produces *arbitrary* well-formed JSON, biased toward the
structures that historically break parsers: escaped quotes, metacharacters
inside strings, empty containers, deep nesting, numbers in every notation.
"""

from __future__ import annotations

import random
from typing import Any

#: String pool stressing the string mask: pseudo-metacharacters, escapes,
#: backslash runs, empty strings, unicode escapes.
TRICKY_STRINGS = [
    "",
    "plain",
    "a{b}c",
    "[1, 2]",
    "a:b,c",
    'quote:"',
    "back\\slash",
    "\\\\",
    "\\\"{",
    "tab\tnl\n",
    "unicode é東",
    "ends with backslash\\",
    '{"fake": "json"}',
]

#: Key pool; a small alphabet maximizes accidental key collisions, which
#: is what query matching needs to be tested against.
KEYS = ["a", "b", "c", "d", "e", "x", "y", "z", "nm", "id", "k{", "w]w"]

NUMBERS = [0, -1, 7, 3.5, -0.25, 1e9, -2e-3, 123456789012345]


def random_json(rng: random.Random, max_depth: int = 4, breadth: int = 5, object_bias: float = 0.35) -> Any:
    """Build a random JSON value as Python objects.

    ``object_bias`` is the probability mass split between objects and
    arrays once the value is a container.
    """
    if max_depth <= 0 or rng.random() < 0.35:
        kind = rng.random()
        if kind < 0.4:
            return rng.choice(TRICKY_STRINGS)
        if kind < 0.8:
            return rng.choice(NUMBERS)
        return rng.choice([True, False, None])
    if rng.random() < object_bias + 0.5 * object_bias:
        n = rng.randrange(0, breadth)
        obj: dict[str, Any] = {}
        for _ in range(n):
            obj[rng.choice(KEYS)] = random_json(rng, max_depth - 1, breadth, object_bias)
        return obj
    return [random_json(rng, max_depth - 1, breadth, object_bias) for _ in range(rng.randrange(0, breadth))]


def random_path(rng: random.Random, max_steps: int = 4, allow_descendant: bool = True) -> str:
    """Build a random JSONPath over the :data:`KEYS` alphabet."""
    steps: list[str] = []
    for _ in range(rng.randrange(1, max_steps + 1)):
        r = rng.random()
        if r < 0.4:
            steps.append("." + rng.choice("abcdexyz"))
        elif r < 0.5:
            steps.append(".*")
        elif r < 0.65:
            steps.append(f"[{rng.randrange(0, 4)}]")
        elif r < 0.8:
            start = rng.randrange(0, 3)
            steps.append(f"[{start}:{start + rng.randrange(1, 3)}]")
        elif r < 0.86:
            steps.append("[*]")
        elif r < 0.90:
            picks = sorted({rng.randrange(0, 5) for _ in range(rng.randrange(2, 4))})
            steps.append("[" + ",".join(map(str, picks)) + "]")
        elif r < 0.94:
            names = sorted({rng.choice("abcdexyz") for _ in range(rng.randrange(2, 4))})
            steps.append("[" + ",".join(f"'{n}'" for n in names) + "]")
        elif not allow_descendant:
            steps.append("[*]")
        else:
            steps.append(".." + rng.choice("abcdexyz"))
    return "$" + "".join(steps)
