"""Structural statistics of a JSON input (reproduces Table 4's columns).

Counts objects, arrays, attributes, primitives, and maximum nesting depth
— computed from the bit-parallel structural index (so it is fast enough
to run on every generated dataset in the benchmark harness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.simdjson_like import structural_positions

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COMMA, _COLON = 0x2C, 0x3A


@dataclass(frozen=True)
class StructuralStats:
    """Table 4 row for one input."""

    n_objects: int
    n_arrays: int
    n_attributes: int
    n_primitives: int
    depth: int
    size_bytes: int

    def as_row(self) -> dict[str, int]:
        return {
            "#objects": self.n_objects,
            "#arrays": self.n_arrays,
            "#attr": self.n_attributes,
            "#prim": self.n_primitives,
            "depth": self.depth,
            "bytes": self.size_bytes,
        }


def structural_stats(data: bytes) -> StructuralStats:
    """Compute structural statistics for one record (or concatenation).

    Primitive counting uses the containment identity: every value is
    either an attribute value, an array element, or a root; array element
    counts come from per-array comma counts (elements = commas + 1 for
    non-empty arrays), which a single sweep over the structural positions
    accumulates alongside the depth profile.
    """
    structs = structural_positions(data)
    if len(structs) == 0:
        # A bare primitive record.
        return StructuralStats(0, 0, 0, 1 if data.strip() else 0, 0, len(data))
    bytes_at = np.frombuffer(data, dtype=np.uint8)[structs]

    n_objects = int(np.count_nonzero(bytes_at == _LBRACE))
    n_arrays = int(np.count_nonzero(bytes_at == _LBRACKET))
    n_attributes = int(np.count_nonzero(bytes_at == _COLON))

    # One sweep computes the depth profile and the total value count:
    # values = roots + attribute values (#colons) + array elements, and
    # primitives = values - containers.
    depth = 0
    max_depth = 0
    roots = 0
    elements = 0
    stack: list[list[int]] = []  # per open container: [is_array, commas, open_pos]
    for pos, byte in zip(structs.tolist(), bytes_at.tolist()):
        if byte == _LBRACE or byte == _LBRACKET:
            if depth == 0:
                roots += 1
            depth += 1
            if depth > max_depth:
                max_depth = depth
            stack.append([byte == _LBRACKET, 0, pos])
        elif byte == _RBRACE or byte == _RBRACKET:
            is_array, commas, open_pos = stack.pop()
            depth -= 1
            if is_array:
                if commas:
                    elements += commas + 1
                elif data[open_pos + 1 : pos].strip():
                    # No commas but non-whitespace content: one element.
                    elements += 1
        elif byte == _COMMA:
            if stack and stack[-1][0]:
                stack[-1][1] += 1

    total_values = roots + n_attributes + elements
    return StructuralStats(
        n_objects=n_objects,
        n_arrays=n_arrays,
        n_attributes=n_attributes,
        n_primitives=total_values - n_objects - n_arrays,
        depth=max_depth,
        size_bytes=len(data),
    )
