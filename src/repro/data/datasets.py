"""Schema-faithful generators for the paper's six datasets (Table 4).

Each generator reproduces the structural character of its namesake —
object/array balance, nesting depth, attribute fan-out, and the
selectivity class of its two Table 5 queries:

========  =====================================  =============================
name      shaped after                           character
========  =====================================  =============================
``TT``    Twitter tweets                         mixed objects/arrays, depth ~11
``BB``    Best Buy product catalog               array-rich (category paths)
``GMD``   Google Maps Directions                 object-heavy, deep route/leg/step
``NSPL``  UK National Statistics Postcode        one giant primitive-array matrix
``WM``    Walmart product feed                   flat objects, almost no arrays
``WP``    Wikidata entities                      very object-heavy, deep claims
========  =====================================  =============================

Field names use the paper's abbreviations (``pd``, ``cp``, ``vc``, ``rt``,
``lg``, ``st``, ``dt``, ``mt``, ``vw``, ``co``, ``it``, ``cl``, ``ms``…)
so the Table 5 query text applies verbatim.

Both evaluation formats are provided (Section 5.1): ``large_record``
builds one single record of roughly ``target_bytes``; ``record_stream``
builds the same content as a sequence of small records with an offset
array.  Generation is deterministic in ``(name, target_bytes, seed)``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable

from repro.stream.records import RecordStream

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo lima "
    "mike november oscar papa quebec romeo sierra tango uniform victor whiskey "
    "xray yankee zulu amber birch cedar dune ember flint grove harbor iris "
    "jasper knoll ledge marsh nook onyx pier quarry ridge slope terrace"
).split()

_LANGS = ("en", "de", "fr", "es", "ja", "pt", "it", "nl")


def _words(rng: random.Random, n: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n))


def _coord(rng: random.Random) -> float:
    return round(rng.uniform(-90, 90), 6)


# ---------------------------------------------------------------------------
# per-dataset record units


def _tt_unit(rng: random.Random, i: int, depth: int = 1) -> dict:
    """One tweet (geo-referenced, like the paper's Figure 1)."""
    n_urls = rng.choice((0, 0, 0, 1, 1, 2))  # ~0.6 urls per tweet
    tweet = {
        "created_at": f"Mon Jul 0{1 + i % 7} 12:{i % 60:02d}:00 +0000 2021",
        "id": 1_000_000_000_000 + i,
        "id_str": str(1_000_000_000_000 + i),
        "text": _words(rng, rng.randrange(4, 18)),
        "truncated": rng.random() < 0.1,
        "en": {
            "hashtags": [
                {"text": rng.choice(_WORDS), "indices": [rng.randrange(0, 80), rng.randrange(80, 140)]}
                for _ in range(rng.randrange(0, 3))
            ],
            "urls": [
                {
                    "url": f"https://t.co/{_words(rng, 1)}{i}{k}",
                    "expanded_url": f"https://example.com/{_words(rng, 1)}/{i}",
                    "display_url": f"example.com/{_words(rng, 1)}",
                    "indices": [rng.randrange(0, 70), rng.randrange(70, 140)],
                }
                for k in range(n_urls)
            ],
            "user_mentions": [
                {"screen_name": rng.choice(_WORDS), "id": rng.randrange(1, 10**9)}
                for _ in range(rng.randrange(0, 2))
            ],
        },
        "user": {
            "id": rng.randrange(1, 10**9),
            "name": _words(rng, 2),
            "screen_name": rng.choice(_WORDS) + str(i % 997),
            "followers_count": rng.randrange(0, 10**6),
            "friends_count": rng.randrange(0, 10**4),
            "verified": rng.random() < 0.02,
            "description": _words(rng, rng.randrange(0, 12)),
        },
        "coordinates": [_coord(rng), _coord(rng)],
        "retweet_count": rng.randrange(0, 10**4),
        "favorite_count": rng.randrange(0, 10**5),
        "lang": rng.choice(_LANGS),
    }
    if rng.random() < 0.4:
        tweet["place"] = {
            "name": _words(rng, 1).title(),
            "full_name": _words(rng, 2).title(),
            "country": rng.choice(("US", "UK", "JP", "BR")),
            "bounding_box": {
                "type": "Polygon",
                "pos": [[_coord(rng), _coord(rng)] for _ in range(4)],
            },
        }
    # Real tweets nest an entire tweet under retweeted_status (one level
    # of recursion), which is where Table 4's depth-11 comes from.
    if depth > 0 and rng.random() < 0.15:
        tweet["retweeted_status"] = _tt_unit(rng, i + 500_000, depth=depth - 1)
    return tweet


def _bb_unit(rng: random.Random, i: int) -> dict:
    """One Best Buy product: category-path arrays dominate the structure."""
    product = {
        "sku": 1_000_000 + i,
        "nm": _words(rng, rng.randrange(3, 8)).title(),
        "type": "HardGood",
        "regularPrice": round(rng.uniform(5, 2500), 2),
        "salePrice": round(rng.uniform(5, 2500), 2),
        "upc": f"{rng.randrange(10**11, 10**12)}",
        "cp": [
            {"id": f"cat{rng.randrange(10000, 99999)}", "nm": _words(rng, 2).title()}
            for _ in range(rng.randrange(2, 6))
        ],
        "description": _words(rng, rng.randrange(8, 25)),
        "manufacturer": _words(rng, 1).title(),
        "modelNumber": f"M{rng.randrange(1000, 99999)}",
        "image": f"https://img.example.com/{i}.jpg",
        "shipping": {"ground": round(rng.uniform(0, 30), 2), "nextDay": round(rng.uniform(10, 60), 2)},
        "offers": [
            {"id": f"of{rng.randrange(1000, 9999)}", "type": rng.choice(("deal", "clearance"))}
            for _ in range(rng.randrange(0, 3))
        ],
    }
    if rng.random() < 0.02:  # videoChapters are rare (BB2's low match count)
        product["vc"] = [
            {"cha": f"Chapter {k + 1}: {_words(rng, 3)}", "st": rng.randrange(0, 3600)}
            for k in range(rng.randrange(1, 5))
        ]
    return product


def _gmd_unit(rng: random.Random, i: int) -> dict:
    """One directions response: deep route/leg/step objects, few arrays."""
    def step() -> dict:
        seconds = rng.randrange(30, 1200)
        meters = rng.randrange(100, 20000)
        return {
            "dt": {"tx": f"{seconds // 60} mins", "vl": seconds},
            "ds": {"tx": f"{meters / 1000:.1f} km", "vl": meters},
            "end_location": {"lat": _coord(rng), "lng": _coord(rng)},
            "start_location": {"lat": _coord(rng), "lng": _coord(rng)},
            "html_instructions": _words(rng, rng.randrange(5, 15)),
            "polyline": {"points": _words(rng, 1) + "".join(rng.choice("abkmq~`@?_") for _ in range(rng.randrange(20, 80)))},
            "travel_mode": "DRIVING",
            "maneuver": rng.choice(("turn-left", "turn-right", "merge", "straight")),
        }

    result = {
        "geocoded_waypoints": [
            {"geocoder_status": "OK", "place_id": f"ChIJ{_words(rng, 1)}{i}", "types": ["locality"]}
            for _ in range(2)
        ],
        "rt": [
            {
                "bounds": {
                    "northeast": {"lat": _coord(rng), "lng": _coord(rng)},
                    "southwest": {"lat": _coord(rng), "lng": _coord(rng)},
                },
                "copyrights": "Map data 2021",
                "lg": [
                    {
                        "distance": {"tx": f"{rng.randrange(1, 900)} km", "vl": rng.randrange(1000, 900000)},
                        "duration": {"tx": f"{rng.randrange(2, 600)} mins", "vl": rng.randrange(100, 36000)},
                        "end_address": _words(rng, 4).title(),
                        "start_address": _words(rng, 4).title(),
                        "st": [step() for _ in range(rng.randrange(3, 9))],
                    }
                    for _ in range(rng.randrange(1, 3))
                ],
                "summary": _words(rng, 2).title(),
            }
        ],
        "status": "OK",
    }
    # Rare top-level attribute (GMD2).  The paper's rate is ~270 matches
    # per GB; scaled up so MB-scale inputs still exercise the query.
    if rng.random() < 0.01:
        result["atm"] = {"provider": _words(rng, 1), "ts": 1_600_000_000 + i}
    return result


#: Exactly 44 column descriptors — NSPL1's match count in Table 5.
_NSPL_COLUMNS = (
    "PCD PCD2 PCDS DOINTR DOTERM USERTYPE OSEAST1M OSNRTH1M OSGRDIND OA11 "
    "CTY CED LAD WARD HLTHAU NHSER CTRY RGN PCON EER TECLEC TTWA PCT NUTS "
    "STATSWARD OA01 CASWARD PARK LSOA01 MSOA01 UR01IND OAC01 LSOA11 "
    "MSOA11 WZ11 CCG BUA11 BUASD11 RU11IND OAC11 LAT LONG LEP1 LEP2"
).split()
assert len(_NSPL_COLUMNS) == 44


def _nspl_meta(rng: random.Random) -> dict:
    """The NSPL metadata view: 44 column descriptors (NSPL1's matches)."""
    return {
        "vw": {
            "id": "nspl-2021",
            "nm": "National Statistics Postcode Lookup",
            "co": [
                {"id": k, "nm": name, "ty": "text" if k < 6 else "number", "ix": k}
                for k, name in enumerate(_NSPL_COLUMNS)
            ],
            "createdAt": 1_600_000_000,
        },
        "src": {"provider": "ONS", "licence": "OGL"},
    }


def _nspl_block(rng: random.Random, i: int) -> list:
    """One block of postcode rows: arrays of arrays of primitives."""
    def row(j: int) -> list:
        postcode = f"{rng.choice('ABCDEFGHKL')}{rng.choice('ABM')}{rng.randrange(1, 99)} {rng.randrange(1, 9)}{rng.choice('XYZQW')}{rng.choice('ABDEF')}"
        return [
            postcode,
            f"{postcode[:4]}{j % 10}",
            rng.randrange(198001, 202301),
            rng.randrange(0, 2),
            rng.randrange(100000, 700000),
            rng.randrange(100000, 1300000),
            f"E{rng.randrange(10**7, 10**8)}",
            f"W{rng.randrange(10**7, 10**8)}",
            round(rng.uniform(49.9, 60.8), 6),
            round(rng.uniform(-8.2, 1.8), 6),
        ]

    return [row(j) for j in range(8)]


def _wm_unit(rng: random.Random, i: int) -> dict:
    """One Walmart item: flat, attribute-heavy, almost array-free."""
    item = {
        "itemId": 10_000_000 + i,
        "parentItemId": 10_000_000 + i - (i % 3),
        "nm": _words(rng, rng.randrange(4, 9)).title(),
        "msrp": round(rng.uniform(3, 900), 2),
        "salePrice": round(rng.uniform(3, 900), 2),
        "upc": f"{rng.randrange(10**11, 10**12)}",
        "categoryPath": "/".join(_words(rng, 1).title() for _ in range(rng.randrange(2, 5))),
        "shortDescription": _words(rng, rng.randrange(10, 30)),
        "longDescription": _words(rng, rng.randrange(30, 80)),
        "brandName": _words(rng, 1).title(),
        "thumbnailImage": f"https://i.example.com/{i}-thumb.jpg",
        "largeImage": f"https://i.example.com/{i}.jpg",
        "productTrackingUrl": f"https://linksynergy.example.com/fs-bin/click?id={i}",
        "standardShipRate": round(rng.uniform(0, 10), 2),
        "marketplace": rng.random() < 0.3,
        "shipToStore": rng.random() < 0.7,
        "freeShipToStore": rng.random() < 0.5,
        "availableOnline": rng.random() < 0.9,
        "stock": rng.choice(("Available", "Limited", "Not available")),
        "customerRating": f"{rng.uniform(1, 5):.1f}",
        "numReviews": rng.randrange(0, 5000),
    }
    if rng.random() < 0.06:  # bundle-reduced price object (WM1's matches)
        item["bmrpr"] = {"pr": round(rng.uniform(2, 700), 2), "cu": "USD"}
    return item


def _wp_unit(rng: random.Random, i: int) -> dict:
    """One Wikidata entity: labels/descriptions maps and claim objects."""
    langs = rng.sample(_LANGS, rng.randrange(2, 6))

    def snak(prop: str) -> dict:
        statement = {
            "ms": {
                "pty": prop,
                "snaktype": "value",
                "datavalue": {
                    "value": {"entity-type": "item", "numeric-id": rng.randrange(1, 10**7)},
                    "type": "wikibase-entityid",
                },
            },
            "type": "statement",
            "id": f"Q{i}${rng.randrange(10**8, 10**9)}",
            "rank": "normal",
        }
        # Qualifier snaks add the deep nesting of real Wikidata dumps.
        if rng.random() < 0.4:
            statement["qualifiers"] = {
                "P580": [{
                    "pty": "P580",
                    "datavalue": {
                        "value": {"time": f"+{rng.randrange(1200, 2021)}-01-01T00:00:00Z",
                                  "precision": 9,
                                  "calendarmodel": {"id": "Q1985727"}},
                        "type": "time",
                    },
                }],
            }
        return statement

    entity = {
        "id": f"Q{1000 + i}",
        "type": "item",
        "labels": {lang: {"language": lang, "value": _words(rng, 2).title()} for lang in langs},
        "descriptions": {lang: {"language": lang, "value": _words(rng, rng.randrange(3, 9))} for lang in langs},
        "aliases": {langs[0]: [{"language": langs[0], "value": _words(rng, 1)} for _ in range(rng.randrange(1, 3))]},
        "cl": {},
        "sitelinks": {
            f"{lang}wiki": {"site": f"{lang}wiki", "title": _words(rng, 2).title(), "badges": []}
            for lang in langs[:2]
        },
        "lastrevid": rng.randrange(10**8, 10**9),
        "modified": "2021-05-01T00:00:00Z",
    }
    claims: dict = {}
    for prop in rng.sample(("P31", "P17", "P131", "P625", "P18", "P373"), rng.randrange(2, 5)):
        claims[prop] = [snak(prop) for _ in range(rng.randrange(1, 3))]
    # P150 ("contains administrative entity") appears on a minority of
    # entities; 12% keeps WP2's 11-record window non-empty at MB scale.
    if rng.random() < 0.12:
        claims["P150"] = [snak("P150") for _ in range(rng.randrange(1, 4))]
    entity["cl"] = claims
    return entity


# ---------------------------------------------------------------------------
# dataset registry


@dataclass(frozen=True)
class QuerySpec:
    """One Table 5 query: its id, the large-record path, and the
    equivalent per-small-record path (``None`` when, as the paper notes
    for NSPL1 and WP2, the query is not applicable to small records)."""

    qid: str
    large: str
    small: str | None
    description: str


@dataclass(frozen=True)
class DatasetSpec:
    """A generator plus its Table 5 queries."""

    name: str
    description: str
    unit: Callable[[random.Random, int], object]
    #: 'array' roots ([unit, ...]) or an object root with units under a key.
    root_key: str | None
    queries: tuple[QuerySpec, ...]


DATASETS: dict[str, DatasetSpec] = {
    "TT": DatasetSpec(
        name="TT",
        description="Twitter tweet stream (developer API shape)",
        unit=_tt_unit,
        root_key=None,
        queries=(
            QuerySpec("TT1", "$[*].en.urls[*].url", "$.en.urls[*].url", "URLs in tweet entities"),
            QuerySpec("TT2", "$[*].text", "$.text", "tweet text"),
        ),
    ),
    "BB": DatasetSpec(
        name="BB",
        description="Best Buy product catalog",
        unit=_bb_unit,
        root_key="pd",
        queries=(
            QuerySpec("BB1", "$.pd[*].cp[1:3].id", "$.cp[1:3].id", "2nd/3rd category-path ids"),
            QuerySpec("BB2", "$.pd[*].vc[*].cha", "$.vc[*].cha", "video chapter titles (rare)"),
        ),
    ),
    "GMD": DatasetSpec(
        name="GMD",
        description="Google Maps Directions responses",
        unit=_gmd_unit,
        root_key=None,
        queries=(
            QuerySpec("GMD1", "$[*].rt[*].lg[*].st[*].dt.tx", "$.rt[*].lg[*].st[*].dt.tx", "step duration texts"),
            QuerySpec("GMD2", "$[*].atm", "$.atm", "rare top-level attribute"),
        ),
    ),
    "NSPL": DatasetSpec(
        name="NSPL",
        description="UK National Statistics Postcode Lookup matrix",
        unit=_nspl_block,
        root_key="dt",
        queries=(
            QuerySpec("NSPL1", "$.mt.vw.co[*].nm", None, "the 44 column names (early in stream)"),
            QuerySpec("NSPL2", "$.dt[*][*][2:4]", "$.dt[*][2:4]", "columns 2-3 of every row"),
        ),
    ),
    "WM": DatasetSpec(
        name="WM",
        description="Walmart product feed",
        unit=_wm_unit,
        root_key="it",
        queries=(
            QuerySpec("WM1", "$.it[*].bmrpr.pr", "$.bmrpr.pr", "bundle-reduced prices (rare)"),
            QuerySpec("WM2", "$.it[*].nm", "$.nm", "item names"),
        ),
    ),
    "WP": DatasetSpec(
        name="WP",
        description="Wikidata entity dump",
        unit=_wp_unit,
        root_key=None,
        queries=(
            QuerySpec("WP1", "$[*].cl.P150[*].ms.pty", "$.cl.P150[*].ms.pty", "P150 claim properties"),
            QuerySpec("WP2", "$[10:21].cl.P150[*].ms.pty", None, "P150 claims of records 10-20 only"),
        ),
    ),
}


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset by its Table 4 short name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}") from None


def _unit_strings(spec: DatasetSpec, target_bytes: int, seed: int) -> list[bytes]:
    """Serialize record units until the target size is reached."""
    rng = random.Random((hash(spec.name) ^ seed) & 0xFFFF_FFFF)
    units: list[bytes] = []
    total = 0
    i = 0
    while total < target_bytes:
        text = json.dumps(spec.unit(rng, i), separators=(",", ":")).encode("utf-8")
        units.append(text)
        total += len(text) + 1
        i += 1
    return units


def large_record(name: str, target_bytes: int, seed: int = 0) -> bytes:
    """Build one single large record of roughly ``target_bytes``."""
    spec = dataset(name)
    units = _unit_strings(spec, target_bytes, seed)
    body = b",".join(units)
    if name == "NSPL":
        rng = random.Random(seed + 97)
        meta = json.dumps(_nspl_meta(rng), separators=(",", ":")).encode()
        return b'{"mt":' + meta + b',"dt":[' + body + b"]}"
    if spec.root_key is not None:
        return b'{"%s":[' % spec.root_key.encode() + body + b'],"total":%d}' % len(units)
    return b"[" + body + b"]"


def record_stream(name: str, target_bytes: int, seed: int = 0) -> RecordStream:
    """Build the small-records format: the same units, one per record."""
    spec = dataset(name)
    units = _unit_strings(spec, target_bytes, seed)
    if name == "NSPL":
        # Each small record carries one data block under "dt".
        units = [b'{"dt":' + u + b"}" for u in units]
    return RecordStream.from_records(units)
