"""Full syntactic validation of JSON records.

Fast-forwarding deliberately trades full validation for speed (paper
Section 3.3: skipped segments only get pairing-level checks), and even
the detailed streaming tokenizer is lexically permissive about primitive
tokens (it only needs their boundaries).  When a pipeline needs a hard
guarantee, this module provides the conventional exhaustive check as a
separate, explicit step: a detailed recursive-descent parse (shared with
the RapidJSON-like baseline) plus per-token lexical validation.
"""

from __future__ import annotations

import json
import re

from repro.baselines.rapidjson_like import _parse_value
from repro.baselines.tokenizer import Tokenizer
from repro.baselines.tree import AnyNode, ArrayNode, ObjectNode, PrimitiveNode
from repro.errors import JsonSyntaxError, ReproError

#: RFC 8259 number grammar.
_NUMBER = re.compile(rb"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?\Z")
_LITERALS = (b"true", b"false", b"null")


def _validate_primitive(token: bytes, at: int) -> None:
    if token.startswith(b'"'):
        try:
            json.loads(token)
        except ValueError as exc:
            raise JsonSyntaxError(f"invalid string token: {exc}", at) from None
        return
    if token in _LITERALS:
        return
    if _NUMBER.match(token):
        return
    raise JsonSyntaxError(f"invalid primitive token {token[:20]!r}", at)


def _validate_tree(node: AnyNode, data: bytes) -> None:
    if isinstance(node, PrimitiveNode):
        _validate_primitive(data[node.start : node.end], node.start)
    elif isinstance(node, ObjectNode):
        for _, child in node.members:
            _validate_tree(child, data)
    elif isinstance(node, ArrayNode):
        for child in node.elements:
            _validate_tree(child, data)


def validate_json(data: bytes | str) -> None:
    """Raise :class:`~repro.errors.JsonSyntaxError` (or another
    :class:`~repro.errors.ReproError`) unless ``data`` is exactly one
    well-formed JSON record, optionally surrounded by whitespace."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    if not data.strip():
        raise JsonSyntaxError("empty input", 0)
    tok = Tokenizer(data)
    tok.skip_ws()
    root = _parse_value(tok)
    tok.skip_ws()
    if tok.pos != len(data):
        raise JsonSyntaxError("trailing content after the record", tok.pos)
    _validate_tree(root, data)


def is_valid_json(data: bytes | str) -> bool:
    """Boolean form of :func:`validate_json`."""
    try:
        validate_json(data)
    except ReproError:
        return False
    return True
