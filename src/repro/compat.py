"""Convenience shim in the style of other Python JSONPath libraries.

For code migrating from ``jsonpath-ng``-like APIs: ``parse(query)``
returns an object whose ``find`` works on *parsed Python values* (dicts
and lists) and returns datum objects with ``value`` and ``full_path``.

This is sugar over :mod:`repro.reference`; for raw bytes and real
streaming performance use :class:`repro.JsonSki` directly.

>>> from repro.compat import parse
>>> [d.value for d in parse("$.a[*]").find({"a": [1, 2]})]
[1, 2]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.jsonpath.ast import Path
from repro.jsonpath.parser import parse_path
from repro.reference.evaluator import evaluate_with_paths


@dataclass(frozen=True)
class Datum:
    """One result of :meth:`CompiledPath.find`."""

    value: Any
    #: Normalized location as a tuple of keys/indices.
    path: tuple

    @property
    def full_path(self) -> str:
        """The location rendered as a JSONPath string."""
        parts = []
        for key in self.path:
            if isinstance(key, int):
                parts.append(f"[{key}]")
            elif isinstance(key, str) and key.isidentifier():
                parts.append(f".{key}")
            else:
                escaped = str(key).replace("\\", "\\\\").replace("'", "\\'")
                parts.append(f"['{escaped}']")
        return "$" + "".join(parts)


@dataclass(frozen=True)
class CompiledPath:
    """A parsed query exposing value-level evaluation."""

    path: Path

    def find(self, value: Any) -> list[Datum]:
        """Evaluate against a parsed Python value, in document order."""
        return [Datum(v, p) for p, v in evaluate_with_paths(self.path, value)]

    def values(self, value: Any) -> list[Any]:
        """Just the matched values."""
        return [d.value for d in self.find(value)]

    def __str__(self) -> str:
        return self.path.unparse()


def parse(query: str) -> CompiledPath:
    """Compile a JSONPath for value-level evaluation."""
    return CompiledPath(parse_path(query))
