"""Command-line interface: ``python -m repro QUERY [FILE]``.

Streams a JSON file (or stdin) through a chosen engine and prints the
matches, one per line — a grep for JSONPath.  Examples::

    python -m repro '$.place.name' tweet.json
    python -m repro '$[*].text' tweets.json --count
    python -m repro '$.text' tweets.jsonl --jsonl --engine jpstream
    python -m repro '$.pd[*].cp[1:3].id' catalog.json --stats

Exit status (grep-inspired, with distinct failure classes): see
:data:`EXIT_CODES`, which is also rendered into ``--help``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.engine.stats import GROUPS
from repro.errors import (
    JsonPathSyntaxError,
    JsonSyntaxError,
    ReproError,
    ResourceLimitError,
    UnsupportedQueryError,
)
from repro.harness.runner import METHOD_LABELS
from repro.stream.records import RecordStream

#: The exit-code taxonomy, the single source of truth: the ``--help``
#: epilog and the table in ``docs/api.md`` are generated from / checked
#: against this mapping by the test suite.
EXIT_CODES = {
    0: "at least one match",
    1: "no match",
    2: "JSONPath syntax error, usage error, or unreadable input",
    3: "the query needs a feature the chosen engine does not support",
    4: "malformed JSON input",
    5: "a resource guard tripped (--max-depth / --timeout / record size)",
    6: "interrupted (SIGINT/SIGTERM) with --checkpoint; progress saved, resume with --resume",
}

#: Exit code for a run stopped by SIGINT/SIGTERM after flushing a checkpoint.
EXIT_INTERRUPTED = 6

#: Default checkpoint cadences: records between commits in --jsonl mode,
#: bytes of input between suspensions in single-record mode.
DEFAULT_CHECKPOINT_RECORDS = 1000
DEFAULT_CHECKPOINT_BYTES = 1 << 20


def exit_code_table() -> str:
    """The exit-code taxonomy as help-epilog text."""
    lines = ["exit codes:"]
    for code, meaning in sorted(EXIT_CODES.items()):
        lines.append(f"  {code}  {meaning}")
    return "\n".join(lines)


def _exit_code_for(exc: ReproError) -> int:
    """Map an error to the documented exit-code taxonomy."""
    if isinstance(exc, ResourceLimitError):
        return 5
    if isinstance(exc, JsonSyntaxError):
        return 4
    if isinstance(exc, UnsupportedQueryError):
        return 3
    return 2  # JsonPathSyntaxError and anything else query/usage-shaped


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stream JSONPath queries over JSON with bit-parallel fast-forwarding (JSONSki).",
        epilog=exit_code_table(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("query", help="JSONPath expression, e.g. '$.place.name'")
    parser.add_argument("file", nargs="?", default="-", help="input file ('-' or omitted: stdin)")
    parser.add_argument("--engine", choices=sorted(METHOD_LABELS), default="jsonski",
                        help="query engine (default: jsonski)")
    parser.add_argument("--jsonl", action="store_true",
                        help="input is newline-delimited JSON (one record per line)")
    parser.add_argument("--raw", action="store_true",
                        help="print raw matched text instead of one JSON value per line")
    parser.add_argument("--count", action="store_true", help="print only the number of matches")
    parser.add_argument("--first", action="store_true", help="print only the first match (early termination)")
    parser.add_argument("--paths", action="store_true",
                        help="prefix each match with its normalized path (jsonski only)")
    parser.add_argument("--stats", action="store_true",
                        help="report fast-forward ratios to stderr (jsonski only)")
    parser.add_argument("--metrics", nargs="?", const="-", default=None, metavar="FILE",
                        help="emit an engine metrics document after the run: JSON to stderr "
                             "(no argument) or to FILE; a FILE ending in .prom gets the "
                             "Prometheus text exposition instead")
    parser.add_argument("--trace", nargs="?", const="-", default=None, metavar="FILE",
                        help="emit engine spans (compile/index_build/scan/fastforward/"
                             "match_emit) as JSON lines to stderr (no argument) or FILE")
    parser.add_argument("--explain", action="store_true",
                        help="print the query's static fast-forward plan and exit")
    parser.add_argument("--analyze", action="store_true",
                        help="probe the input and report measured fast-forward behaviour")
    parser.add_argument("--cross-check", action="store_true",
                        help="run every engine and the oracle; fail on any disagreement")
    parser.add_argument("--index-cache", default=None, metavar="DIR",
                        help="persist the stage-1 structural index as a sidecar under "
                             "DIR: the next run over the same bytes skips indexing "
                             "entirely (two-stage engines, single-document input)")
    robust = parser.add_argument_group("robustness")
    robust.add_argument("--strict", dest="lenient", action="store_false", default=False,
                        help="fail on the first malformed record (the default)")
    robust.add_argument("--lenient", dest="lenient", action="store_true",
                        help="with --jsonl: skip malformed records, resume at the next "
                             "record boundary, and report what was skipped to stderr")
    robust.add_argument("--max-depth", type=int, default=None, metavar="N",
                        help="refuse records nested deeper than N containers "
                             "(default: 256; 0 disables the guard)")
    robust.add_argument("--max-record-bytes", type=int, default=None, metavar="N",
                        help="refuse single records larger than N bytes")
    robust.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="abandon the run after SECONDS via the cooperative deadline")
    robust.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="persist resumable progress checkpoints at FILE (atomic, "
                             "checksummed generations); with --jsonl progress is "
                             "per-record, otherwise the single record is suspended "
                             "mid-stream at chunk boundaries (jsonski only). "
                             "SIGINT/SIGTERM flush a final checkpoint and exit "
                             f"{EXIT_INTERRUPTED}")
    robust.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="checkpoint cadence: records between commits with --jsonl "
                             f"(default {DEFAULT_CHECKPOINT_RECORDS}), bytes of input "
                             "between suspensions in single-record mode "
                             f"(default {DEFAULT_CHECKPOINT_BYTES})")
    robust.add_argument("--resume", action="store_true",
                        help="resume from the newest valid generation of --checkpoint "
                             "(skipping completed records / already-streamed bytes); "
                             "without a usable checkpoint the run starts fresh")
    return parser


def _build_limits(args):
    """Translate the robustness flags into a ``Limits``; ``None`` keeps
    each engine's defaults."""
    from repro.resilience.guards import DEFAULT_LIMITS, Deadline, Limits

    if args.max_depth is None and args.max_record_bytes is None and args.timeout is None:
        return None
    if args.max_depth is None:
        max_depth = DEFAULT_LIMITS.max_depth
    elif args.max_depth <= 0:
        max_depth = None
    else:
        max_depth = args.max_depth
    return Limits(
        max_depth=max_depth,
        max_record_bytes=args.max_record_bytes,
        deadline=Deadline.after(args.timeout) if args.timeout else None,
    )


def _read_input(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _print_stats(engine, err) -> None:
    stats = engine.last_stats
    if stats is None:
        return
    parts = ", ".join(f"{g}={stats.ratio(g):.1%}" for g in GROUPS if stats.ratio(g) > 0)
    print(f"fast-forwarded {stats.overall_ratio:.1%} of {stats.total_length} bytes ({parts})", file=err)


def _finish_observability(args, info, registry, trace_sink, data: bytes, n_matches: int, err) -> int:
    """Flush --metrics / --trace output once the run is over.

    Returns 0, or 2 when the metrics file cannot be written.
    """
    if trace_sink is not None:
        trace_sink.close()
    if registry is None:
        return 0
    if not info.instrumented:
        # Baselines carry no internal counters; the CLI records the
        # run-level facts so the document is never empty.  bytes_total is
        # set with zero skips — these engines examine the whole input.
        registry.counter("engine.runs").add(1)
        registry.counter("engine.matches").add(n_matches)
        registry.counter("engine.bytes_consumed").add(len(data))
        registry.counter("ff.total_bytes").add(len(data))
    from repro.observe import metrics_document, render_prometheus
    from repro.storage import storage_metrics

    # Storage-substrate counters (sidecar rejects/quarantines, lock
    # waits, rebuilds) accumulate process-globally below any one engine
    # run; fold them in so a corrupt cache dir is visible, not a silent
    # cold-start tax.
    registry.merge(storage_metrics())

    try:
        if args.metrics != "-" and args.metrics.endswith(".prom"):
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(registry))
            return 0
        import json as _json

        document = metrics_document(registry, engine=args.engine, query=args.query)
        if args.metrics == "-":
            _json.dump(document, err, indent=2, sort_keys=True)
            print(file=err)
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                _json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
    except OSError as exc:
        print(f"error: cannot write metrics to {args.metrics}: {exc}", file=err)
        return 2
    return 0


def _run_lenient(args, engine, data: bytes, info, registry, trace_sink, out, err) -> int:
    """``--lenient --jsonl``: skip malformed records, report, keep going."""
    import json as _json

    from repro.resilience.recovery import run_with_recovery

    stream = RecordStream.from_jsonl(data)
    recovery = run_with_recovery(engine, stream, metrics=registry)
    if not recovery.ok:
        print(recovery.describe(), file=err)
    values = recovery.all_values()
    code = _finish_observability(args, info, registry, trace_sink, data, len(values), err)
    if code:
        return code
    if args.count:
        print(len(values), file=out)
        return 0 if values else 1
    for value in values[: 1 if args.first else len(values)]:
        print(_json.dumps(value, ensure_ascii=False), file=out)
    return 0 if values else 1


class _CliEmitter:
    """Adapter from the checkpoint emitter protocol onto the CLI output.

    When the stream is seekable (a redirected file, a test buffer) the
    resumed run truncates back to the checkpointed offset and the final
    output is exactly-once; a terminal/pipe falls back to at-least-once
    across the narrow crash window (``tell`` reports ``None``).
    """

    def __init__(self, stream) -> None:
        self.stream = stream

    def emit(self, index: int, values: list) -> None:
        from repro.engine.output import Match

        for value in values:
            if isinstance(value, Match):
                # Lazy view: splice the raw slice (already one JSON
                # value) — the checkpointed path never parses matches.
                print(value.text.decode("utf-8", "replace"), file=self.stream)
            else:
                print(json.dumps(value, ensure_ascii=False), file=self.stream)

    def flush(self) -> None:
        self.stream.flush()

    def tell(self):
        try:
            return self.stream.tell()
        except (OSError, ValueError, AttributeError):
            return None

    def truncate_to(self, offset) -> None:
        self.stream.seek(offset)
        self.stream.truncate(offset)


def _signal_stop():
    """Arm SIGINT/SIGTERM as *clean-stop requests* for checkpointed runs.

    Returns ``(stop, restore)``: ``stop(...)`` reports whether a signal
    arrived (accepted as both the record-cursor and no-arg callback), and
    ``restore()`` reinstates the previous handlers.
    """
    hits: list[int] = []

    def handler(signum, frame):  # pragma: no cover - signal delivery timing
        hits.append(signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # non-main thread or unsupported
            pass

    def stop(*_args) -> bool:
        return bool(hits)

    def restore() -> None:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                pass

    return stop, restore


def _run_checkpointed_records(args, engine, data, info, registry, trace_sink, out, err, stop) -> int:
    """``--checkpoint --jsonl``: record-granularity resumable streaming."""
    from repro.resilience.recovery import run_with_recovery

    stream = RecordStream.from_jsonl(data)
    every = args.checkpoint_every or DEFAULT_CHECKPOINT_RECORDS
    emitter = None if args.count else _CliEmitter(out)
    recovery = run_with_recovery(
        engine,
        stream,
        metrics=registry,
        checkpoint=args.checkpoint,
        checkpoint_every=every,
        resume=args.resume,
        emitter=emitter,
        stop=stop,
        # The CLI only ever streams raw slices (or counts); decoding
        # every match before re-encoding it was the emission bottleneck.
        materialize=False,
    )
    ck = recovery.checkpoint
    if ck.resumed_at:
        print(f"resumed from checkpoint at record {ck.resumed_at}", file=err)
    if not recovery.ok:
        print(recovery.describe(), file=err)
    code = _finish_observability(args, info, registry, trace_sink, data, ck.emitted, err)
    if code:
        return code
    if ck.interrupted:
        print(
            f"interrupted: progress checkpointed to {args.checkpoint}; "
            "rerun with --resume to continue",
            file=err,
        )
        return EXIT_INTERRUPTED
    if args.count:
        print(ck.emitted, file=out)
    return 0 if ck.emitted else 1


def _run_checkpointed_single(args, data, limits, info, registry, trace_sink, out, err, stop) -> int:
    """``--checkpoint`` on one record: intra-record suspend/resume."""
    from repro.checkpoint import SUSPEND_KIND, CheckpointStore, SuspendableRun
    from repro.errors import CheckpointError

    store = CheckpointStore(args.checkpoint)
    every = args.checkpoint_every or DEFAULT_CHECKPOINT_BYTES
    run = None
    if args.resume:
        record = store.load_latest()
        for path, reason in store.skipped:
            print(f"warning: skipped invalid checkpoint: {reason}", file=err)
        if record is not None:
            payload = record.payload
            if payload.get("kind") != SUSPEND_KIND:
                raise CheckpointError(
                    f"checkpoint {record.path} is a {payload.get('kind')!r} "
                    "checkpoint, not a single-record suspension (did you "
                    "mean to pass --jsonl?)"
                )
            if payload.get("query") != args.query:
                raise CheckpointError(
                    f"checkpoint {record.path} was written for query "
                    f"{payload.get('query')!r}, not {args.query!r}"
                )
            run = SuspendableRun.resume(data, payload["engine_state"], limits=limits)
    else:
        store.clear()
    if run is None:
        run = SuspendableRun.begin(args.query, data, limits=limits)

    def save(done: bool) -> None:
        store.save({
            "kind": SUSPEND_KIND,
            "query": args.query,
            "done": done,
            "engine_state": run.suspend().to_dict(),
        })

    while not run.step(every):
        save(False)
        if stop():
            print(
                f"interrupted at byte {run.pos}/{run.size}: progress "
                f"checkpointed to {args.checkpoint}; rerun with --resume "
                "to continue",
                file=err,
            )
            return EXIT_INTERRUPTED
    save(True)
    matches = run.matches()
    n = len(matches)
    code = _finish_observability(args, info, registry, trace_sink, data, n, err)
    if code:
        return code
    if args.count:
        print(n, file=out)
        return 0 if n else 1
    for match in list(matches)[: 1 if args.first else n]:
        print(match.text.decode("utf-8", "replace") if args.raw else match.value(), file=out)
    return 0 if n else 1


def main(argv: list[str] | None = None, out=None, err=None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        # Subcommand dispatch: the query service front door has its own
        # parser and lifecycle (docs/serving.md).
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:], out=out, err=err)
    args = build_parser().parse_args(argv)

    if args.explain:
        from repro.query.explain import explain

        try:
            print(explain(args.query).describe(), file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=err)
            return 2
        return 0

    if args.analyze:
        from repro.analysis import analyze

        try:
            data = _read_input(args.file)
            print(analyze(data, args.query).describe(), file=out)
        except OSError as exc:
            print(f"error: {exc}", file=err)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=err)
            return _exit_code_for(exc)
        return 0

    if args.cross_check:
        from repro.crosscheck import cross_check, cross_check_records

        try:
            data = _read_input(args.file)
            if args.jsonl:
                results = cross_check_records(data, args.query)
                print(f"{len(results)} records cross-checked, all engines agree", file=out)
            else:
                print(cross_check(data, args.query).describe(), file=out)
        except OSError as exc:
            print(f"error: {exc}", file=err)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=err)
            return _exit_code_for(exc)
        return 0

    jsonski_only = args.paths or args.stats
    if jsonski_only and args.engine != "jsonski":
        print("--paths/--stats require --engine jsonski", file=err)
        return 2

    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint", file=err)
        return 2
    if args.checkpoint is not None:
        if args.paths:
            print("--checkpoint does not support --paths", file=err)
            return 2
        if not args.jsonl and args.engine != "jsonski":
            print("--checkpoint on a single record requires --engine jsonski "
                  "(intra-record suspension)", file=err)
            return 2
        if args.jsonl and args.first:
            print("--checkpoint with --jsonl does not support --first", file=err)
            return 2

    try:
        data = _read_input(args.file)
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=err)
        return 2

    # Observability wiring: a registry for --metrics, a JSONL-sinked
    # tracer for --trace.  Instrumented engines take both natively; for
    # the baselines the CLI records run-level counters itself below.
    registry = tracer = trace_sink = None
    from repro.registry import ENGINES as _ENGINES

    info = _ENGINES.info(args.engine)
    if args.metrics is not None:
        from repro.observe import MetricsRegistry

        registry = MetricsRegistry()
    if args.trace is not None:
        from repro.observe import JsonlSink, Tracer

        try:
            trace_sink = JsonlSink(err if args.trace == "-" else args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}", file=err)
            return 2
        tracer = Tracer(sink=trace_sink, keep=False)

    observe_kwargs = {}
    if info.instrumented:
        if registry is not None:
            observe_kwargs["metrics"] = registry
        if tracer is not None:
            observe_kwargs["tracer"] = tracer

    limits = _build_limits(args)
    if limits is not None:
        observe_kwargs["limits"] = limits

    try:
        from repro.registry import compile as compile_engine

        engine = compile_engine(args.query, engine=args.engine, collect_stats=args.stats, **observe_kwargs)

        if args.checkpoint is not None:
            stop, restore = _signal_stop()
            try:
                if args.jsonl:
                    return _run_checkpointed_records(
                        args, engine, data, info, registry, trace_sink, out, err, stop
                    )
                return _run_checkpointed_single(
                    args, data, limits, info, registry, trace_sink, out, err, stop
                )
            finally:
                restore()

        if args.lenient and args.jsonl and not args.paths:
            return _run_lenient(args, engine, data, info, registry, trace_sink, out, err)

        # Two-stage engines: build the reusable stage-1 index once, so
        # every view below (first / run / run_with_paths) is stage 2 only.
        # --index-cache routes stage 1 through the persistent sidecar:
        # a warm cache makes this line a load, not a build.
        if info.two_stage and not args.jsonl:
            record = engine.index(data, cache_dir=args.index_cache)
        else:
            record = data

        if args.first and info.early_terminating and not args.jsonl and not args.paths:
            match = engine.first(record)
            if match is not None:
                print(match.text.decode("utf-8", "replace") if args.raw else match.value(), file=out)
            code = _finish_observability(args, info, registry, trace_sink, data,
                                         1 if match is not None else 0, err)
            return code or (0 if match is not None else 1)

        if args.jsonl:
            stream = RecordStream.from_jsonl(data)
            if args.paths:
                pairs = [p for i in range(len(stream)) for p in engine.run_with_paths(stream.record(i))]
            else:
                matches = engine.run_records(stream)
        elif args.paths:
            pairs = engine.run_with_paths(record)
        else:
            matches = engine.run(record)
    except ReproError as exc:
        print(f"error: {exc}", file=err)
        # JsonPathSyntaxError.position is an offset into the query, not
        # the input — a data caret would point at the wrong text.
        position = None if isinstance(exc, JsonPathSyntaxError) else getattr(exc, "position", None)
        if position is not None and position >= 0 and data:
            from repro.errors import format_error_context

            print(format_error_context(data, position), file=err)
        if registry is not None:
            registry.counter("cli.errors", error=type(exc).__name__).add(1)
        # Flush --metrics/--trace even on failure: the error counters are
        # the part an operator most wants to scrape.
        _finish_observability(args, info, registry, trace_sink, data, 0, err)
        return _exit_code_for(exc)

    if args.stats and info.instrumented:
        _print_stats(engine, err)

    code = _finish_observability(args, info, registry, trace_sink, data,
                                 len(pairs) if args.paths else len(matches), err)
    if code:
        return code

    if args.paths:
        n = len(pairs)
        for path, match in pairs[: 1 if args.first else n]:
            rendered = "$" + "".join(f"[{k!r}]" if isinstance(k, str) else f"[{k}]" for k in path)
            value = match.text.decode("utf-8", "replace") if args.raw else match.value()
            print(f"{rendered}\t{value}", file=out)
        return 0 if n else 1

    n = len(matches)
    if args.count:
        print(n, file=out)
        return 0 if n else 1
    shown = list(matches)[: 1 if args.first else n]
    for match in shown:
        print(match.text.decode("utf-8", "replace") if args.raw else match.value(), file=out)
    return 0 if n else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
