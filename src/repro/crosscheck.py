"""Cross-engine verification on user data.

Runs a query through every engine (and the ``json.loads`` oracle) and
asserts they agree — the differential test the suite applies to random
inputs, packaged for a user's *own* records.  Useful before trusting the
fast-forwarding engine on a feed with unusual structure, and as a bug
report generator: a :class:`CrossCheckFailure` carries the minimal
reproduction facts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError, UnsupportedQueryError
from repro.harness.runner import METHOD_LABELS, make_engine
from repro.jsonpath.ast import Path
from repro.jsonpath.parser import parse_path
from repro.reference import evaluate_bytes

#: Engines included in a cross-check (everything except the ablation
#: word-mode duplicate, which shares the jsonski code path).
DEFAULT_ENGINES = ("jsonski", "jsonski-word", "rds", "jpstream", "rapidjson", "simdjson", "pison", "stdlib")


class CrossCheckFailure(ReproError):
    """Two engines (or an engine and the oracle) disagreed."""

    def __init__(self, query: str, engine: str, got: list, expected: list) -> None:
        super().__init__(
            f"engine {engine!r} disagrees with the oracle on {query!r}: "
            f"{len(got)} vs {len(expected)} matches"
        )
        self.query = query
        self.engine = engine
        self.got = got
        self.expected = expected


@dataclass
class CrossCheckResult:
    """Outcome of one cross-check: which engines ran and agreed."""

    query: str
    n_matches: int
    agreed: list[str] = field(default_factory=list)
    skipped: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"{self.query}: {self.n_matches} matches, {len(self.agreed)} engines agree"]
        lines.extend(f"  ok      {METHOD_LABELS[name]}" for name in self.agreed)
        lines.extend(f"  skipped {METHOD_LABELS[name]} ({reason})" for name, reason in self.skipped.items())
        return "\n".join(lines)


def _canonical(values: list) -> list[str]:
    return [json.dumps(v, sort_keys=True) for v in values]


def cross_check(
    data: bytes | str,
    query: str | Path,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
) -> CrossCheckResult:
    """Verify every engine against the oracle on one record.

    Raises :class:`CrossCheckFailure` at the first disagreement; engines
    that legitimately cannot run the query (e.g. Pison with ``..``) are
    recorded as skipped, not failed.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    path = parse_path(query) if isinstance(query, str) else query
    expected = _canonical(evaluate_bytes(path, data))
    result = CrossCheckResult(query=path.unparse(), n_matches=len(expected))
    for name in engines:
        try:
            engine = make_engine(name, path)
        except UnsupportedQueryError as exc:
            result.skipped[name] = str(exc).split("(")[0].strip()
            continue
        got = _canonical(engine.run(data).values())
        if got != expected:
            raise CrossCheckFailure(result.query, name, got, expected)
        result.agreed.append(name)
    return result


def cross_check_records(data: bytes, query: str | Path, jsonl: bool = True) -> list[CrossCheckResult]:
    """Cross-check every record of a JSONL (or concatenated) payload."""
    from repro.stream.records import RecordStream

    stream = RecordStream.from_jsonl(data) if jsonl else RecordStream.from_concatenated(data)
    return [cross_check(stream.record(i), query) for i in range(len(stream))]
