"""Record-to-row extraction: several fields per record in one pass.

The most common JSON-analytics loop is "for every record, pull these
fields into a flat row".  :class:`Extractor` compiles the field queries
into one fused :class:`~repro.engine.multi.JsonSkiMulti` pass, so each
record is streamed once no matter how many fields are requested:

>>> from repro.extract import Extractor
>>> rows = Extractor({"id": "$.user.id", "text": "$.text"})
>>> rows.extract(b'{"user": {"id": 7}, "text": "hi"}')
{'id': 7, 'text': 'hi'}
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.multi import JsonSkiMulti
from repro.jsonpath.ast import Path
from repro.stream.records import RecordStream


class Extractor:
    """Extract named fields from records in one streaming pass each.

    Parameters
    ----------
    fields:
        Mapping of output column name to JSONPath.
    mode:
        ``'first'`` (default) — each column holds the first match (or
        ``default``); ``'list'`` — each column holds all matches.
    default:
        Value used in ``'first'`` mode when a query has no match.
    """

    def __init__(
        self,
        fields: dict[str, str | Path],
        mode: str = "first",
        default: Any = None,
    ) -> None:
        if not fields:
            raise ValueError("at least one field is required")
        if mode not in ("first", "list"):
            raise ValueError(f"mode must be 'first' or 'list', got {mode!r}")
        self.columns = list(fields)
        self.mode = mode
        self.default = default
        self._engine = JsonSkiMulti(list(fields.values()))

    def extract(self, record: bytes | str) -> dict[str, Any]:
        """One record → one row (a plain dict)."""
        results = self._engine.run(record)
        row: dict[str, Any] = {}
        for column, matches in zip(self.columns, results):
            if self.mode == "list":
                row[column] = matches.values()
            else:
                row[column] = matches[0].value() if len(matches) else self.default
        return row

    def extract_records(self, stream: RecordStream) -> Iterator[dict[str, Any]]:
        """Lazily extract a row per record of a stream."""
        for record in stream:
            yield self.extract(record)

    def extract_many(self, records: "RecordStream | list[bytes]") -> list[dict[str, Any]]:
        """Materialized form of :meth:`extract_records`."""
        if isinstance(records, RecordStream):
            return list(self.extract_records(records))
        return [self.extract(record) for record in records]
