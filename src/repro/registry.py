"""Unified engine registry and factory (the ``repro.compile`` API).

Every query processor in the package is described by one
:class:`EngineInfo` carrying its constructor and capability flags, so
callers (CLI, harness, cross-check, user code) select engines by data
instead of special-casing names::

    engine = repro.compile("$.pd[*].id", engine="jsonski",
                           collect_stats=True)
    info = repro.ENGINES["pison"]
    if info.supports_descendant: ...

Compatibility: ``repro.ENGINES`` has always mapped short names to
constructors (``repro.ENGINES["jpstream"]("$.a")``); an
:class:`EngineInfo` is itself callable with the same signature, so that
lookup style keeps working unchanged — the info object *is* the
deprecation shim for the old string→constructor dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines import JPStream, PisonLike, RapidJsonLike, SimdJsonLike, StdlibJson
from repro.engine import JsonSki, RecursiveDescentStreamer
from repro.engine.base import ensure_query_supported
from repro.engine.prepared import PreparedQuery, cached_parse
from repro.jsonpath.ast import Path


@dataclass(frozen=True)
class EngineInfo:
    """One registered engine: constructor plus capability flags.

    Attributes
    ----------
    name / label:
        Short registry key (``"jsonski"``) and display label
        (``"JSONSki"``, the paper's Table 2 names).
    factory:
        ``factory(query, **opts) -> engine``; every factory accepts
        ``collect_stats=`` (the uniform constructor surface), and
        instrumented factories additionally accept ``metrics=`` and
        ``tracer=``.
    streaming / preprocessing:
        Execution scheme: single forward pass with bounded auxiliary
        memory, vs. upfront index/DOM construction.
    supports_descendant / supports_filters:
        Query features the engine can run; :meth:`check_query` turns a
        violation into a uniform
        :class:`~repro.errors.UnsupportedQueryError`.
    early_terminating:
        Whether ``first``/``exists`` stop at the first match instead of
        scanning the whole record.
    instrumented:
        Whether the engine populates the observability layer
        (``last_stats``, spans, registry counters).
    two_stage:
        Whether the engine executes as two separable stages — a stage-1
        structural index (reusable via :func:`repro.index` /
        :class:`~repro.engine.prepared.IndexedBuffer`) and a stage-2
        streaming pass — so index cost can be amortized across queries.
    """

    name: str
    label: str
    factory: Callable[..., Any] = field(repr=False)
    streaming: bool = False
    preprocessing: bool = False
    supports_descendant: bool = True
    supports_filters: bool = True
    early_terminating: bool = False
    instrumented: bool = False
    two_stage: bool = False

    def check_query(self, path: Path) -> None:
        """Raise :class:`UnsupportedQueryError` if ``path`` needs a
        feature this engine lacks (uniform message across engines)."""
        ensure_query_supported(
            path,
            engine=self.name,
            descendant=self.supports_descendant,
            filters=self.supports_filters,
        )

    def __call__(self, query: str | Path, **opts: Any) -> Any:
        """Construct the engine — the legacy ``ENGINES[name](query)``
        constructor-lookup surface."""
        return self.factory(query, **opts)


class EngineRegistry(dict):
    """Name → :class:`EngineInfo` mapping with registration helpers."""

    def register(self, info: EngineInfo) -> EngineInfo:
        self[info.name] = info
        return info

    def info(self, name: str) -> EngineInfo:
        try:
            return self[name]
        except KeyError:
            raise KeyError(
                f"unknown engine {name!r}; expected one of {sorted(self)}"
            ) from None

    def labels(self) -> dict[str, str]:
        """Short name → display label (the Table 2 method labels)."""
        return {name: info.label for name, info in self.items()}

    def names(self, **flags: bool) -> tuple[str, ...]:
        """Engine names whose capability flags match ``flags``."""
        return tuple(
            name for name, info in self.items()
            if all(getattr(info, flag) == want for flag, want in flags.items())
        )


#: The engine registry, in the paper's Table 2 order plus this
#: reproduction's extra ablation engines.
ENGINES = EngineRegistry()

ENGINES.register(EngineInfo(
    name="jpstream", label="JPStream", factory=JPStream,
    streaming=True, supports_filters=False,
))
ENGINES.register(EngineInfo(
    name="rapidjson", label="RapidJSON", factory=RapidJsonLike,
    preprocessing=True,
))
ENGINES.register(EngineInfo(
    name="simdjson", label="simdjson", factory=SimdJsonLike,
    preprocessing=True,
))
ENGINES.register(EngineInfo(
    name="pison", label="Pison", factory=PisonLike,
    preprocessing=True, supports_descendant=False, supports_filters=False,
))
ENGINES.register(EngineInfo(
    name="jsonski", label="JSONSki", factory=JsonSki,
    streaming=True, early_terminating=True, instrumented=True, two_stage=True,
))
ENGINES.register(EngineInfo(
    name="jsonski-word", label="JSONSki(word)",
    factory=lambda query, **opts: JsonSki(query, mode="word", **opts),
    streaming=True, early_terminating=True, instrumented=True, two_stage=True,
))
ENGINES.register(EngineInfo(
    name="rds", label="RDS(no-FF)", factory=RecursiveDescentStreamer,
    streaming=True, supports_filters=False, instrumented=True,
))
ENGINES.register(EngineInfo(
    name="stdlib", label="json.loads+walk", factory=StdlibJson,
    preprocessing=True,
))


def compile(query: str | Path, engine: str = "jsonski", **opts: Any) -> PreparedQuery:
    """Compile ``query`` for a registered engine — the unified factory.

    Parses the query once, verifies the engine supports its features
    (raising a uniform :class:`~repro.errors.UnsupportedQueryError`
    otherwise), and forwards ``opts`` to the constructor.  Unsupported
    keyword options raise the constructor's ordinary :class:`TypeError`.

    Returns a :class:`~repro.engine.prepared.PreparedQuery`, which
    exposes the full engine surface plus the two-stage verbs
    (``.index(data)`` and ``.run(indexed_buffer)``); see
    ``docs/two-stage.md``.

    >>> import repro
    >>> repro.compile("$.a", engine="jpstream").run(b'{"a": 7}').values()
    [7]
    """
    info = ENGINES.info(engine)
    path = cached_parse(query) if isinstance(query, str) else query
    info.check_query(path)
    return PreparedQuery(info(path, **opts), info)


__all__ = ["ENGINES", "EngineInfo", "EngineRegistry", "compile"]
