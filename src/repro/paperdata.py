"""The paper's reported numbers, as data.

Transcribed from Jiang & Zhao, ASPLOS 2022 — Tables 4-6 and the headline
ratios of Section 5.2 — so the harness can print paper-vs-measured
side by side (``python -m repro.harness.report --compare-paper``) and
EXPERIMENTS.md can be regenerated mechanically.

Numbers here are *the paper's*, not ours; each constant cites where it
comes from.
"""

from __future__ import annotations

#: Table 4 — dataset statistics of the 1 GB evaluation inputs.
PAPER_TABLE4 = {
    #        #objects   #arrays    #attr     #prim     #sub     depth
    "TT":   (2_390_000, 2_290_000, 26_500_000, 24_300_000, 150_000, 11),
    "BB":   (1_910_000, 4_880_000, 40_700_000, 35_800_000, 230_000, 7),
    "GMD":  (10_300_000, 43_000,   29_000_000, 21_000_000, 4_440,   9),
    "NSPL": (613,        3_500_000, 1_660,     84_200_000, 1_740_000, 9),
    "WM":   (333_000,    34_000,   8_190_000,  9_920,      275_000, 4),
    "WP":   (17_300_000, 6_530_000, 53_200_000, 35_000_000, 137_000, 12),
}

#: Table 5 — match counts of the twelve queries on the 1 GB inputs.
PAPER_TABLE5_MATCHES = {
    "TT1": 88_881, "TT2": 150_135,
    "BB1": 459_332, "BB2": 8_857,
    "GMD1": 1_716_752, "GMD2": 270,
    "NSPL1": 44, "NSPL2": 3_509_764,
    "WM1": 15_892, "WM2": 272_499,
    "WP1": 15_603, "WP2": 35,
}

#: Table 6 — fast-forward ratios by group (fractions of the stream).
#: ``None`` marks the paper's "–" (group not applicable); "<0.01%" cells
#: are recorded as 0.0001.
PAPER_TABLE6 = {
    #        G1       G2       G3       G4       G5       Overall
    "TT1":  (0.1280,  0.7822,  0.0022,  0.0820,  None,    0.9944),
    "TT2":  (0.0000,  0.0117,  0.0228,  0.9562,  0.0075,  0.9907),
    "BB1":  (0.1434,  0.0072,  0.0049,  0.8219,  0.0075,  0.9849),
    "BB2":  (0.8924,  0.0873,  0.0002,  0.0001,  None,    0.9799),
    "GMD1": (0.1318,  0.0004,  0.0106,  0.8313,  None,    0.9741),
    "GMD2": (0.0002,  0.9997,  0.0001,  0.0000,  None,    0.9999),
    "NSPL1": (0.0001, 0.0001,  0.0001,  0.9999,  None,    0.9999),
    "NSPL2": (0.8345, 0.0000,  0.0155,  0.0001,  0.1094,  0.9594),
    "WM1":  (0.9797,  0.0013,  0.0001,  0.0166,  None,    0.9977),
    "WM2":  (0.0001,  0.0033,  0.0190,  0.9656,  None,    0.9879),
    "WP1":  (0.0147,  0.8308,  0.0001,  0.1477,  None,    0.9933),
    "WP2":  (0.0001,  0.0002,  0.0001,  0.0001,  0.9996,  0.9999),
}

#: Section 5.2 headline speedups of JSONSki over each serial method
#: (single large record, average over the twelve queries).
PAPER_FIG10_SPEEDUPS = {
    "jpstream": 12.3,
    "simdjson": 4.8,
    "pison": 3.1,
}

#: Section 5.2 — 16-thread scaling factors on small records (Figure 12).
PAPER_FIG12_SCALING = {"jpstream": 11.9, "pison": 11.8, "jsonski": 10.3}

#: Section 5.2 — single-record 16-thread comparisons: JSONSki(1t) beats
#: JPStream(16) by 28% and trails Pison(16) by 48%.
PAPER_SINGLE_VS_16 = {"jpstream16": +0.28, "pison16": -0.48}


def dominant_groups(qid: str, threshold: float = 0.05) -> tuple[str, ...]:
    """The groups the paper bolds for a query (> 5% contribution)."""
    row = PAPER_TABLE6[qid]
    groups = ("G1", "G2", "G3", "G4", "G5")
    return tuple(g for g, v in zip(groups, row[:5]) if v is not None and v > threshold)
