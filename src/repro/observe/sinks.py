"""Pluggable sinks: where spans and metrics go once produced.

Three shippable destinations, one tiny protocol (``emit(record: dict)``
plus ``close()``):

- :class:`MemorySink` — a list, for tests and interactive inspection;
- :class:`JsonlSink` — one JSON object per line, append-friendly, the
  format ``--trace=FILE`` and ``--metrics=FILE`` write;
- :func:`render_prometheus` / :class:`PrometheusTextSink` — the
  Prometheus text exposition format (``# TYPE`` headers, label sets,
  cumulative ``_bucket{le=...}`` histogram lines) so a scrape endpoint
  can serve a registry verbatim.

:func:`metrics_document` is the canonical JSON summary the CLI emits:
the raw registry snapshot plus the derived headline numbers
(``bytes_skipped``, ``bytes_total``, ``ff_ratio`` per group) that
mirror :class:`repro.engine.stats.FastForwardStats`.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.observe.metrics import MetricsRegistry


class MemorySink:
    """Collects emitted records in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes each record as one JSON line to a file or file object."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "a", encoding="utf-8")
            self._owned = True
        else:
            self._file = target
            self._owned = False

    def emit(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owned:
            self._file.close()


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _prom_name(name: str, prefix: str) -> str:
    mangled = name.replace(".", "_").replace("-", "_")
    return f"{prefix}_{mangled}" if prefix else mangled


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: dict[str, str] | None = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    rendered = ",".join(
        '%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"')) for k, v in pairs
    )
    return "{" + rendered + "}"


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for counter in sorted(registry.counters(), key=lambda c: (c.name, c.labels)):
        name = _prom_name(counter.name, prefix)
        if name not in seen_types:
            lines.append(f"# TYPE {name} counter")
            seen_types.add(name)
        lines.append(f"{name}{_prom_labels(counter.labels)} {counter.value}")
    for hist in sorted(registry.histograms(), key=lambda h: (h.name, h.labels)):
        name = _prom_name(hist.name, prefix)
        if name not in seen_types:
            lines.append(f"# TYPE {name} histogram")
            seen_types.add(name)
        cumulative = 0
        for bound, count in zip((*hist.bounds, float("inf")), hist.bucket_counts):
            cumulative += count
            lines.append(
                f"{name}_bucket{_prom_labels(hist.labels, {'le': _prom_float(bound)})} {cumulative}"
            )
        lines.append(f"{name}_sum{_prom_labels(hist.labels)} {_prom_float(hist.total)}")
        lines.append(f"{name}_count{_prom_labels(hist.labels)} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusTextSink:
    """Holds a registry and exposes it as Prometheus text on demand.

    Unlike the record-stream sinks this one is pull-shaped (Prometheus
    scrapes); ``emit`` accepts and ignores span records so a single sink
    object can be handed to both a tracer and a metrics consumer.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str = "repro") -> None:
        self.registry = registry
        self.prefix = prefix

    def emit(self, record: dict) -> None:
        pass

    def render(self) -> str:
        return render_prometheus(self.registry, self.prefix)

    def write_to(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# JSON metrics document


def metrics_document(registry: MetricsRegistry, **extra: Any) -> dict:
    """The CLI's ``--metrics`` JSON document for one registry.

    Headline fields are derived from the fast-forward counters so they
    agree with :class:`repro.engine.stats.FastForwardStats` by
    construction: ``bytes_skipped`` is the sum of the per-group
    ``ff.skipped_bytes`` counters and ``bytes_total`` is
    ``ff.total_bytes``.
    """
    from repro.engine.stats import GROUPS

    groups = {g: registry.value("ff.skipped_bytes", group=g) for g in GROUPS}
    bytes_total = registry.value("ff.total_bytes")
    bytes_skipped = sum(groups.values())
    document = {
        "bytes_total": bytes_total,
        "bytes_skipped": bytes_skipped,
        "ff_ratio": (bytes_skipped / bytes_total) if bytes_total else 0.0,
        "ff_ratio_by_group": {
            g: (n / bytes_total) if bytes_total else 0.0 for g, n in groups.items()
        },
        "metrics": registry.as_dict(),
    }
    document.update(extra)
    return document
