"""Counters, histograms, and the registry that holds them.

The registry is the single accumulation point for every number the
engines can report: bytes scanned vs. bytes skipped per fast-forward
group (the Table 6 ratios), words classified and chunks cached/evicted
by the structural index, scanner primitive call counts, matches emitted,
records processed.  It is deliberately zero-dependency and cheap:
metrics are plain Python ints behind a method call, created once and
held by reference on hot paths so that per-event cost is one attribute
lookup and one locked integer add.

One registry is routinely visible to several threads at once — the
serve loop labels requests while executor threads run engines into the
same instruments, and pool results merge back in — so every mutation
(``add``/``set``/``observe``, get-or-create, ``merge``) takes the
instrument's ``threading.Lock``.  ``x += 1`` is three bytecodes; the
GIL does not make it atomic, and the lost updates are real
(tests/test_concurrency_races.py).  The locks are uncontended in
single-threaded runs.

Instruments are identified by a dotted name plus optional labels
(``registry.counter("ff.skipped_bytes", group="G1")``); the
``(name, labels)`` pair is the merge key, which is what lets per-worker
registries from parallel execution collapse into one
(:meth:`MetricsRegistry.merge` / :meth:`MetricsRegistry.merge_dict`).
"""

from __future__ import annotations

import threading
from typing import Iterator

#: Default histogram bucket upper bounds (seconds-oriented, exponential).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically *usable* integer metric (``set`` exists for the
    few gauge-like values such as ``ff.total_bytes``)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def set(self, value: int) -> None:
        with self._lock:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {dict(self.labels)!r}, value={self.value})"


class Histogram:
    """Fixed-bucket distribution: count, sum, min, max, per-bucket tallies.

    ``bounds`` are the inclusive upper edges of each bucket; observations
    above the last bound land in the implicit overflow (``+Inf``) bucket,
    matching Prometheus histogram semantics.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str, labels: LabelKey = (), bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf overflow last
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ "
                f"({self.bounds} vs {other.bounds})"
            )
        with self._lock:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            for i, n in enumerate(other.bucket_counts):
                self.bucket_counts[i] += n


class MetricsRegistry:
    """All counters and histograms of one observed execution context.

    Each engine run, worker, or process accumulates into its own
    registry; registries merge losslessly, so a fleet of workers reduces
    to the same numbers a serial run would have produced.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            # Get-or-create races another thread's identical first
            # touch; without the lock both would insert and one side's
            # handle would silently accumulate into a lost instrument.
            with self._lock:
                found = self._counters.get(key)
                if found is None:
                    found = self._counters[key] = Counter(name, key[1])
        return found

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels: str) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            with self._lock:
                found = self._histograms.get(key)
                if found is None:
                    found = self._histograms[key] = Histogram(name, key[1], bounds)
        return found

    def value(self, name: str, **labels: str) -> int:
        """Current value of a counter (0 if it was never touched)."""
        found = self._counters.get((name, _label_key(labels)))
        return found.value if found is not None else 0

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)

    # -- merge / snapshot --------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (e.g. one worker's) into this one."""
        for (name, labels), counter in other._counters.items():
            with self._lock:
                mine = self._counters.setdefault((name, labels), Counter(name, labels))
            mine.add(counter.value)
        for (name, labels), hist in other._histograms.items():
            with self._lock:
                mine = self._histograms.get((name, labels))
                if mine is None:
                    mine = self._histograms[(name, labels)] = Histogram(name, labels, hist.bounds)
            mine.merge(hist)

    def as_dict(self) -> dict:
        """JSON/pickle-able snapshot (the cross-process wire format)."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self._counters.values()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for h in self._histograms.values()
            ],
        }

    def merge_dict(self, snapshot: dict) -> None:
        """Merge an :meth:`as_dict` snapshot (from another process)."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).add(entry["value"])
        for entry in snapshot.get("histograms", ()):
            hist = self.histogram(entry["name"], bounds=tuple(entry["bounds"]), **entry["labels"])
            incoming = Histogram(entry["name"], hist.labels, tuple(entry["bounds"]))
            incoming.bucket_counts = list(entry["bucket_counts"])
            incoming.count = entry["count"]
            incoming.total = entry["total"]
            incoming.min = entry["min"] if entry["min"] is not None else float("inf")
            incoming.max = entry["max"] if entry["max"] is not None else float("-inf")
            hist.merge(incoming)

    @classmethod
    def from_dict(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_dict(snapshot)
        return registry
