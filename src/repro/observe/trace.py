"""Spans and tracers: the time-shaped half of the observability layer.

A :class:`Tracer` records *spans* — named, attributed intervals — for
the stages the simdjson/JSONSki literature attributes wins to:
``compile`` (query → automaton), ``index_build`` (per-chunk bitmap
construction), ``scan`` (one record's streaming pass), ``record``
(per-record envelope in small-record runs), plus instantaneous
``fastforward`` and ``match_emit`` events carrying byte ranges.

The off-switch is structural, not a flag check in the hot loop:
:data:`NOOP_TRACER` is a distinct class whose ``span`` hands back one
shared, do-nothing context manager, and instrumented code keeps a single
``tracer.enabled`` test outside its inner loops, so the tracing-off
path stays within measurement noise (see ``pytest -m perf_smoke``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Span:
    """One completed interval (or instantaneous event, start == end).

    ``start``/``end`` are :func:`time.perf_counter` seconds for timed
    spans; byte-positioned events (``fastforward``, ``match_emit``)
    carry their offsets in ``attrs`` instead.
    """

    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {"name": self.name, "start": self.start, "end": self.end,
                "duration": self.duration, **self.attrs}


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        tracer._finish(Span(self._name, self._start, tracer._clock(), self._attrs))


class _NoopSpan:
    """The shared do-nothing span handle of :data:`NOOP_TRACER`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans in memory and optionally forwards them to a sink.

    Parameters
    ----------
    sink:
        Anything with an ``emit(record: dict)`` method (see
        :mod:`repro.observe.sinks`); each finished span is forwarded as
        its :meth:`Span.as_dict` form.
    keep:
        Retain finished spans on :attr:`spans` (default).  Long-running
        services emitting to a file sink can turn retention off to keep
        memory flat.
    """

    enabled = True

    def __init__(self, sink: object | None = None, keep: bool = True,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.spans: list[Span] = []
        self.sink = sink
        self.keep = keep
        self._clock = clock

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a timed span: ``with tracer.span("scan", bytes=n): ...``"""
        return _ActiveSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous, attribute-carrying span."""
        now = self._clock()
        self._finish(Span(name, now, now, attrs))

    def _finish(self, span: Span) -> None:
        if self.keep:
            self.spans.append(span)
        if self.sink is not None:
            self.sink.emit(span.as_dict())

    def clear(self) -> None:
        self.spans.clear()

    def named(self, name: str) -> list[Span]:
        """All retained spans called ``name``, in completion order."""
        return [s for s in self.spans if s.name == name]


class NoopTracer:
    """The always-off tracer: every operation is a constant no-op.

    Engines default to the shared :data:`NOOP_TRACER` instance, and
    guard any per-event work with ``tracer.enabled`` so the metrics-off
    hot path never constructs span objects.
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def clear(self) -> None:
        pass

    def named(self, name: str) -> list:
        return []


#: Shared process-wide no-op tracer (the default for every engine).
NOOP_TRACER = NoopTracer()
