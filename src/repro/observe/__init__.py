"""``repro.observe``: zero-dependency engine observability.

The paper's headline claims live in counters — fast-forward ratio
(Section 5.3, Table 6), bitmap-build vs. scan time (Section 4.1),
skipped-bytes accounting — and a production deployment needs the same
numbers continuously.  This subsystem provides:

- :class:`MetricsRegistry` — counters and histograms, mergeable across
  runs, workers, and processes (:mod:`repro.observe.metrics`);
- :class:`Tracer` / :data:`NOOP_TRACER` — span emission for the engine
  stages (``compile``, ``index_build``, ``scan``, ``record``) and
  byte-ranged events (``fastforward``, ``match_emit``), with a
  structurally no-op default so uninstrumented runs pay nothing
  (:mod:`repro.observe.trace`);
- sinks — in-memory, JSON-lines, and Prometheus text exposition
  (:mod:`repro.observe.sinks`).

Wire-up happens through the unified engine API::

    registry = MetricsRegistry()
    engine = repro.compile("$.pd[*].id", engine="jsonski", metrics=registry)
    engine.run(data)
    print(render_prometheus(registry))

or from the command line with ``--metrics[=FILE]`` / ``--trace[=FILE]``.
"""

from repro.observe.metrics import Counter, Histogram, MetricsRegistry
from repro.observe.sinks import (
    JsonlSink,
    MemorySink,
    PrometheusTextSink,
    metrics_document,
    render_prometheus,
)
from repro.observe.trace import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "PrometheusTextSink",
    "Span",
    "Tracer",
    "metrics_document",
    "render_prometheus",
]
