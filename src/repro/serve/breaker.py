"""Per-corpus circuit breaker with a lenient-degrade middle state.

A corpus that keeps producing engine errors (malformed records, depth
bombs, poison quarantines) should stop costing full-price work — but
the repo already has a cheaper failure mode than refusing outright:
lenient resync (skip the bad record, keep streaming, report it).  So
the breaker has *four* states instead of the classic three:

    CLOSED ──(``degrade_after`` consecutive failed requests)──▶ DEGRADED
    DEGRADED ──(``open_after`` total consecutive failures)────▶ OPEN
    OPEN ──(``cooldown`` elapsed)─────────────────────────────▶ HALF_OPEN
    HALF_OPEN ──probe ok──▶ CLOSED          ──probe fails──▶ OPEN

- **CLOSED**: requests run strict; per-record engine errors terminate
  the stream with an ``error`` line.
- **DEGRADED**: requests run lenient — bad records are skipped and
  counted in the terminator instead of failing the request.  A request
  that *still* fails (e.g. every record is poison) keeps counting
  toward OPEN.
- **OPEN**: requests are rejected instantly with 503
  ``breaker_open`` + ``Retry-After`` = remaining cooldown.
- **HALF_OPEN**: exactly one probe request is admitted (lenient); its
  outcome decides re-close vs. re-open.

The clock is injectable so tests drive cooldowns without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.serve.errors import BreakerOpenError

CLOSED = "closed"
DEGRADED = "degraded"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    def __init__(
        self,
        name: str,
        degrade_after: int = 3,
        open_after: int = 6,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not (1 <= degrade_after <= open_after):
            raise ValueError("need 1 <= degrade_after <= open_after")
        self.name = name
        self.degrade_after = degrade_after
        self.open_after = open_after
        self.cooldown = cooldown
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probe_inflight = False
        #: state-transition count per target state (metrics fodder).
        self.transitions: dict[str, int] = {}

    def _move(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions[state] = self.transitions.get(state, 0) + 1

    # -- admission ----------------------------------------------------

    def admit(self) -> str:
        """Gate one request; returns the mode it should run in.

        ``"strict"`` or ``"lenient"``; raises :class:`BreakerOpenError`
        when the corpus is sitting out its cooldown.
        """
        if self.state == OPEN:
            remaining = self.cooldown - (self.clock() - self.opened_at)
            if remaining > 0:
                raise BreakerOpenError(
                    f"circuit breaker open for corpus {self.name!r}",
                    retry_after=remaining,
                )
            self._move(HALF_OPEN)
            self._probe_inflight = False
        if self.state == HALF_OPEN:
            if self._probe_inflight:
                raise BreakerOpenError(
                    f"corpus {self.name!r} is half-open with a probe in flight",
                    retry_after=max(1.0, self.cooldown / 2),
                )
            self._probe_inflight = True
            return "lenient"
        return "lenient" if self.state == DEGRADED else "strict"

    # -- outcome reporting --------------------------------------------

    def abandon(self) -> None:
        """The admitted request never produced a verdict (client vanished,
        handler crashed): release a half-open probe slot without voting."""
        self._probe_inflight = False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        self._move(CLOSED)

    def record_failure(self) -> None:
        """One request-terminating engine failure against this corpus."""
        self._probe_inflight = False
        if self.state == HALF_OPEN:
            self.opened_at = self.clock()
            self._move(OPEN)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.open_after:
            self.opened_at = self.clock()
            self._move(OPEN)
        elif self.consecutive_failures >= self.degrade_after:
            self._move(DEGRADED)
