"""Minimal HTTP/1.1 on raw asyncio streams — the only protocol we need.

The service deliberately hand-rolls its HTTP instead of adding a
framework dependency: four routes, one request per connection
(``Connection: close``), chunked transfer encoding for streamed NDJSON.
What the hand-rolling buys is *total control over timeouts*: every
``await`` that depends on the client (reading the request, draining the
response) is wrapped in :func:`asyncio.wait_for`, so a slow-loris client
costs one connection for ``client_timeout`` seconds, never a hung
handler.  The RS009 static rule enforces exactly that property over
this package.

Streamed responses end with a mandatory **terminator line** (``done``,
``interrupted``, or ``error``) *before* the zero-length chunk, so a
truncated stream is detectable at both the HTTP layer (missing final
chunk) and the application layer (missing terminator) — the chaos
harness asserts "no truncated-but-200 streams" on both.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.serve.errors import BadRequestError

#: Hard caps keeping one hostile client from ballooning handler memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request (method, path, lower-cased headers, body)."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        if not self.body:
            raise BadRequestError("empty request body (expected JSON)")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader, timeout: float) -> Request | None:
    """Parse one request, bounding every client-paced read by ``timeout``.

    Returns ``None`` for a connection closed before a request line (a
    health checker probing the port).  Raises :class:`BadRequestError`
    for malformed requests and :class:`asyncio.TimeoutError` for clients
    that feed bytes slower than the budget (slow-loris).
    """
    line = await asyncio.wait_for(reader.readline(), timeout)
    if not line:
        return None
    if len(line) > MAX_HEADER_BYTES:
        raise BadRequestError("request line too long")
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError as exc:
        raise BadRequestError("malformed request line") from exc

    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise BadRequestError("headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequestError("malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise BadRequestError("malformed Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequestError(f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
        if length:
            body = await asyncio.wait_for(reader.readexactly(length), timeout)
    elif headers.get("transfer-encoding"):
        raise BadRequestError("chunked request bodies are not supported")
    return Request(method=method.upper(), target=target, headers=headers, body=body)


def _head(status: int, headers: list[tuple[str, str]]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append("connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    timeout: float,
    content_type: str = "application/json",
    retry_after: float | None = None,
) -> None:
    """One complete (non-streamed) response."""
    headers = [
        ("content-type", content_type),
        ("content-length", str(len(body))),
    ]
    if retry_after is not None:
        headers.append(("retry-after", str(max(1, round(retry_after)))))
    writer.write(_head(status, headers) + body)
    await asyncio.wait_for(writer.drain(), timeout)


async def send_error(
    writer: asyncio.StreamWriter,
    status: int,
    code: str,
    message: str,
    timeout: float,
    retry_after: float | None = None,
) -> None:
    body = json.dumps({"error": code, "message": message}).encode("utf-8")
    await send_response(writer, status, body, timeout, retry_after=retry_after)


class NdjsonStream:
    """A 200 chunked NDJSON response: lines in, terminator, done.

    Usage::

        stream = NdjsonStream(writer, timeout)
        await stream.start()
        await stream.send_line({"index": 0, "values": [...]})
        await stream.finish({"done": True, "records": 1})

    ``finish`` writes the terminator line *and* the closing zero-length
    chunk; a client that sees the final chunk without a terminator line
    (or vice versa) is looking at a bug, not a flaky network.
    """

    def __init__(self, writer: asyncio.StreamWriter, timeout: float) -> None:
        self.writer = writer
        self.timeout = timeout
        self.started = False
        self.finished = False

    async def start(self) -> None:
        self.writer.write(
            _head(
                200,
                [
                    ("content-type", "application/x-ndjson"),
                    ("transfer-encoding", "chunked"),
                ],
            )
        )
        await asyncio.wait_for(self.writer.drain(), self.timeout)
        self.started = True

    async def send_line(self, obj: Any) -> None:
        data = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
        self.writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await asyncio.wait_for(self.writer.drain(), self.timeout)

    async def finish(self, terminator: dict) -> None:
        if self.finished:
            return
        # Claim the terminator *before* the first await: the drain
        # below is a scheduling point, and a second finish() entered
        # there (success path racing an error path) would otherwise
        # pass the guard too and emit a duplicate terminator + final
        # chunk.  Claiming early also makes a failed send at-most-once.
        self.finished = True
        await self.send_line(terminator)
        self.writer.write(b"0\r\n\r\n")
        await asyncio.wait_for(self.writer.drain(), self.timeout)
