"""Corpus registration and per-request compile with shared artifacts.

The compile-once/run-many split for a *service*:

- **Per corpus (expensive, shared)** — the payload bytes, the strict and
  lenient :class:`~repro.stream.records.RecordStream` views, and for
  single-document corpora the stage-1
  :class:`~repro.engine.prepared.IndexedBuffer` (all chunks retained via
  ``cache_chunks=None``), keyed by engine mode so a second query over
  the same corpus pays zero index cost.
- **Per query text (cheap, shared)** — the parsed
  :class:`~repro.jsonpath.ast.Path` (``registry.compile`` accepts a
  pre-parsed ``Path``), cached in a small LRU.
- **Per request (cheap, private)** — the engine itself.  Engines bake
  ``limits=`` (the request's deadline) at construction and mutate
  ``last_stats`` per run, so a compiled engine is *never* shared across
  concurrent requests; compilation from a cached ``Path`` is
  microseconds against any real stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path as FsPath
from threading import Lock

from repro.engine import prepared as prepared_mod
from repro.engine.prepared import QUERY_CACHE_SIZE as QUERY_CACHE_SIZE  # re-export (compat)
from repro.engine.prepared import IndexedBuffer, PreparedQuery
from repro.errors import JsonPathSyntaxError, ReproError
from repro.jsonpath.ast import Path
from repro.serve.errors import BadRequestError, UnknownCorpusError
from repro.stream.records import RecordStream

FORMATS = ("jsonl", "json", "concatenated")


@dataclass
class Corpus:
    """One registered corpus and its shared, reusable artifacts."""

    name: str
    payload: bytes
    format: str = "jsonl"
    #: Strict record view (raises on malformed framing at registration).
    stream: RecordStream | None = None
    #: Lenient view: bad framing skipped, count recorded (DEGRADED mode).
    lenient_stream: RecordStream | None = None
    lenient_skipped: int = 0
    #: Directory for persistent structural-index sidecars; ``None``
    #: keeps indexes in-memory only (rebuilt per process).
    index_cache: FsPath | None = None
    #: ``mode`` -> stage-1 index for single-document corpora.
    _indexes: dict[str, IndexedBuffer] = field(default_factory=dict)
    _index_lock: Lock = field(default_factory=Lock)

    def __post_init__(self) -> None:
        if self.format not in FORMATS:
            raise BadRequestError(
                f"unknown corpus format {self.format!r} (expected one of {FORMATS})"
            )
        if self.format == "jsonl":
            self.stream = RecordStream.from_jsonl(self.payload)
            self.lenient_stream = self.stream
        elif self.format == "concatenated":
            self.stream = RecordStream.from_concatenated(self.payload)
            self.lenient_stream, self.lenient_skipped = (
                RecordStream.from_concatenated_lenient(self.payload)
            )
        # "json": one document, no record stream — served via the cached
        # IndexedBuffer below.

    @property
    def records(self) -> int:
        return 1 if self.format == "json" else len(self.stream)

    def records_for(self, mode: str) -> RecordStream:
        """The record view a request running in ``mode`` should stream."""
        return self.lenient_stream if mode == "lenient" else self.stream

    def indexed(self, prepared: PreparedQuery) -> IndexedBuffer:
        """The shared stage-1 index for a single-document corpus.

        Built on first use per engine mode and reused by every later
        query with a matching mode — this is the jXBW-style reusable
        structural index the service exists to amortize.

        With ``index_cache`` set, the index additionally persists as an
        mmap-shareable sidecar: the *next process* serving this corpus
        loads stage-1 arrays instead of rebuilding them (and concurrent
        processes share the mapped pages).  The sidecar path rides the
        durable-storage substrate (:mod:`repro.storage`): writes are
        atomic + fsync'd, concurrent processes racing a cold cache
        resolve to a single-flight build behind an advisory lock, and a
        corrupt sidecar is quarantined (``*.corrupt`` + reason note,
        counted in ``/metrics``) instead of silently rebuilt over.
        """
        mode = getattr(prepared, "mode", "vector")
        with self._index_lock:
            cached = self._indexes.get(mode)
            if cached is None:
                if self.index_cache is not None:
                    cached = prepared.index(self.payload, cache_dir=self.index_cache)
                else:
                    cached = prepared.index(self.payload)
                self._indexes[mode] = cached
            return cached


class CorpusRegistry:
    """Named corpora + the shared compiled-query LRU (thread-safe).

    Query parsing delegates to the process-wide
    :data:`repro.engine.prepared.QUERY_CACHE`, so the service, the CLI
    and library callers in one process share a single LRU of parsed
    paths and compiled automata.  ``index_cache`` (a directory) makes
    every registered single-document corpus persist its stage-1 index
    as a sidecar (see :mod:`repro.engine.sidecar`).
    """

    def __init__(self, index_cache: str | FsPath | None = None) -> None:
        self._corpora: dict[str, Corpus] = {}
        self._lock = Lock()
        self.index_cache = FsPath(index_cache) if index_cache is not None else None

    # -- corpora ------------------------------------------------------

    def register(self, name: str, payload: bytes, format: str = "jsonl") -> Corpus:
        corpus = Corpus(name=name, payload=payload, format=format, index_cache=self.index_cache)
        with self._lock:
            self._corpora[name] = corpus
        return corpus

    def register_file(self, name: str, path: str | FsPath, format: str = "jsonl") -> Corpus:
        return self.register(name, FsPath(path).read_bytes(), format=format)

    def get(self, name: str) -> Corpus:
        with self._lock:
            corpus = self._corpora.get(name)
        if corpus is None:
            raise UnknownCorpusError(f"no corpus registered under {name!r}")
        return corpus

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._corpora)

    # -- queries ------------------------------------------------------

    def parse(self, query: str) -> Path:
        """Parse ``query`` through the shared LRU; syntax errors are 400s.

        Looked up through the module so a test that swaps
        ``repro.engine.prepared.QUERY_CACHE`` observes this path too.
        """
        try:
            return prepared_mod.QUERY_CACHE.parse(query)
        except JsonPathSyntaxError as exc:
            raise BadRequestError(f"bad query: {exc}") from exc

    def compile(self, query: str, engine: str, limits) -> PreparedQuery:
        """Per-request engine: cached parse, fresh construction.

        ``limits`` is mandatory here by design (and by RS003): every
        request must carry its own deadline into the engine.
        """
        from repro.registry import ENGINES, compile as compile_engine

        if engine not in ENGINES:
            raise BadRequestError(
                f"unknown engine {engine!r} (expected one of {sorted(ENGINES)})"
            )
        path = self.parse(query)
        try:
            return compile_engine(path, engine=engine, limits=limits)
        except ReproError as exc:
            raise BadRequestError(f"query not runnable on {engine!r}: {exc}") from exc
