"""The query service front door: admission, budgets, breakers, drain.

``QueryService`` wires the serve subsystem together over a stdlib
``asyncio`` server (no framework dependency):

- ``POST /query`` — streamed NDJSON over a registered corpus.  The
  request is gated in order by **drain** (503), **admission** (429 when
  the bounded queue sheds), **budget** (429 when the wall-clock budget
  expired while queued), and the per-corpus **circuit breaker** (503
  when open).  A request that survives the gates runs with a *fresh*
  relative deadline equal to its remaining budget
  (:meth:`QueryService.rebudget`) — queue time is paid by the client's
  budget, never silently absorbed, and retried/resumed work never
  inherits an expired absolute deadline.
- ``GET /healthz`` — liveness (always 200 while the process runs).
- ``GET /readyz`` — readiness (503 before start and while draining).
- ``GET /metrics`` — Prometheus text from the shared registry.
- ``GET /corpora`` — registered corpus names and record counts.

Engine work runs on a thread-pool executor batch by batch; between
batches the handler streams the batch's NDJSON lines (client-paced
writes bounded by ``client_timeout``) and re-checks deadline and drain
state — so a slow client, an expiring budget, or a SIGTERM all take
effect at the next batch boundary instead of hanging a worker.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import re
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path as FsPath
from typing import Any, Callable

from repro.errors import DeadlineExceededError, ReproError
from repro.observe import MetricsRegistry, render_prometheus
from repro.resilience.guards import DEFAULT_MAX_DEPTH, Limits
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import CircuitBreaker
from repro.serve.drain import DrainCoordinator
from repro.serve.errors import (
    BadRequestError,
    BudgetExpiredError,
    DrainingError,
    ServiceError,
)
from repro.serve.protocol import NdjsonStream, read_request, send_error, send_response
from repro.serve.registry import Corpus, CorpusRegistry

_CHECKPOINT_ID = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


@dataclass
class ServeConfig:
    """Every tuning knob the service exposes (see docs/serving.md)."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: Admission: concurrent requests actually running / allowed to wait.
    max_active: int = 4
    max_queued: int = 16
    #: Wall-clock budgets (seconds): applied when the request names none,
    #: and the cap a request cannot exceed.
    default_budget: float = 30.0
    max_budget: float = 300.0
    #: Bound on every client-paced read/write (slow-loris defense).
    client_timeout: float = 10.0
    #: Seconds in-flight streams get to finish after SIGTERM.
    drain_grace: float = 5.0
    #: Records per executor hop (and per drain/deadline re-check).
    batch_size: int = 256
    #: Circuit breaker thresholds (consecutive failed requests).
    degrade_after: int = 3
    open_after: int = 6
    breaker_cooldown: float = 5.0
    #: Baseline engine guards every request runs under.
    max_depth: int | None = DEFAULT_MAX_DEPTH
    max_record_bytes: int | None = None
    #: Directory for pool-dispatch checkpoints (``"checkpoint"`` body
    #: field); None disables checkpointed dispatch.
    checkpoint_dir: str | None = None
    default_engine: str = "jsonski"
    #: Flush the final metrics document here on clean shutdown.
    metrics_path: str | None = None
    #: Honor the request's ``"inject_faults"`` field (arms the pool's
    #: crash/hang sentinels).  Chaos-harness only; never in production.
    allow_fault_injection: bool = False


class QueryService:
    def __init__(
        self,
        registry: CorpusRegistry,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self.admission = AdmissionQueue(
            self.config.max_active, self.config.max_queued, clock
        )
        self.drain = DrainCoordinator(self.config.drain_grace, clock)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.server: asyncio.base_events.Server | None = None
        self.executor: ThreadPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.max_active, thread_name_prefix="repro-serve"
        )
        self.server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        return self.server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.drain.begin)

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT, drain gracefully, exit 0."""
        await self.start()
        self.install_signal_handlers()
        await self.drain.wait_begun()
        await self.drain_and_stop()
        return 0

    async def drain_and_stop(self) -> None:
        """Finish (or interrupt) in-flight streams, then shut down.

        The listener deliberately stays up through the grace window:
        late arrivals get an explicit 503 ``draining`` (and ``/readyz``
        503 flips the load balancer) instead of a connection refused.
        """
        grace_slack = self.config.drain_grace + self.config.client_timeout + 5.0
        if not await self.drain.wait_drained(grace_slack):
            self.drain.force_interrupt = True
            await self.drain.wait_drained(self.config.client_timeout)
        await self.stop()

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self.server.wait_closed(), self.config.client_timeout
                )
        if self.executor is not None:
            self.executor.shutdown(wait=False, cancel_futures=True)
        # The write itself must not run on the loop: stop() races the
        # last in-flight handlers, and a slow disk here would stall
        # their goodbyes.  Own executor is already shut down, so borrow
        # the loop's default one.
        await asyncio.get_running_loop().run_in_executor(None, self._flush_metrics)

    def merged_metrics(self) -> MetricsRegistry:
        """Service counters plus the process-global ``storage.*`` ones
        (sidecar rejects, quarantines, lock waits, rebuilds) — what
        ``/metrics`` and the shutdown flush render."""
        from repro.storage import storage_metrics

        merged = MetricsRegistry()
        merged.merge(self.metrics)
        merged.merge(storage_metrics())
        return merged

    def _flush_metrics(self) -> None:
        if self.config.metrics_path:
            text = render_prometheus(self.merged_metrics())
            FsPath(self.config.metrics_path).write_text(text, encoding="utf-8")

    # -- plumbing -----------------------------------------------------

    def breaker(self, corpus: str) -> CircuitBreaker:
        existing = self.breakers.get(corpus)
        if existing is None:
            existing = CircuitBreaker(
                corpus,
                degrade_after=self.config.degrade_after,
                open_after=self.config.open_after,
                cooldown=self.config.breaker_cooldown,
                clock=self.clock,
            )
            self.breakers[corpus] = existing
        return existing

    def base_limits(self, budget: float) -> Limits:
        """Arrival-anchored limits: the absolute budget starts *now*."""
        return Limits(
            max_depth=self.config.max_depth,
            max_record_bytes=self.config.max_record_bytes,
        ).with_deadline(budget, self.clock)

    def rebudget(self, limits: Limits) -> Limits:
        """Convert what's left of an absolute budget into a fresh deadline.

        This is the deadline-propagation step: after queueing, the
        request's remaining wall-clock budget becomes the relative
        budget the engine (or a pool dispatch, or a resumed segment)
        runs under.  An exhausted budget sheds here — expired absolute
        deadlines must never reach a dispatcher.
        """
        remaining = limits.remaining()
        if remaining is None:
            return limits
        if remaining <= 0:
            raise BudgetExpiredError(
                "request budget expired before dispatch", retry_after=1.0
            )
        return limits.with_deadline(remaining, self.clock)

    # -- connection handling ------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        timeout = self.config.client_timeout
        try:
            try:
                request = await read_request(reader, timeout)
            except asyncio.TimeoutError:
                self.metrics.counter("serve.client_timeouts").add(1)
                await send_error(
                    writer, 400, "client_timeout", "request not received in time",
                    timeout,
                )
                return
            if request is None:
                return  # port probe: connection closed without a request
            await self._route(request, reader, writer)
        except BadRequestError as exc:
            with contextlib.suppress(OSError, asyncio.TimeoutError):
                await send_error(writer, exc.status, exc.code, str(exc), timeout)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            # Client went away (or stopped reading) mid-conversation; the
            # stream protocol makes the truncation visible on their side.
            self.metrics.counter("serve.aborted_connections").add(1)
        except Exception as exc:  # noqa: BLE001 -- last-resort 500, recorded
            self.metrics.counter(
                "serve.internal_errors", error=type(exc).__name__
            ).add(1)
            with contextlib.suppress(OSError, asyncio.TimeoutError):
                await send_error(
                    writer, 500, "internal", f"{type(exc).__name__}: {exc}", timeout
                )
        finally:
            with contextlib.suppress(OSError):
                writer.close()
            with contextlib.suppress(OSError, asyncio.TimeoutError, ConnectionError):
                await asyncio.wait_for(writer.wait_closed(), timeout)

    async def _route(
        self,
        request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        timeout = self.config.client_timeout
        target = request.target.split("?", 1)[0]
        self.metrics.counter("serve.requests", route=target).add(1)
        if target == "/healthz":
            await send_response(writer, 200, b'{"status":"ok"}', timeout)
        elif target == "/readyz":
            if self.server is not None and not self.drain.draining:
                await send_response(writer, 200, b'{"status":"ready"}', timeout)
            else:
                await send_response(writer, 503, b'{"status":"draining"}', timeout)
        elif target == "/metrics":
            body = render_prometheus(self.merged_metrics()).encode("utf-8")
            await send_response(
                writer, 200, body, timeout, content_type="text/plain; version=0.0.4"
            )
        elif target == "/corpora":
            doc = {
                name: {"records": self.registry.get(name).records}
                for name in self.registry.names()
            }
            await send_response(writer, 200, json.dumps(doc).encode("utf-8"), timeout)
        elif target == "/query":
            if request.method != "POST":
                await send_error(writer, 405, "method_not_allowed", "POST only", timeout)
                return
            await self._handle_query(request, writer)
        else:
            await send_error(writer, 404, "not_found", f"no route {target!r}", timeout)

    # -- /query -------------------------------------------------------

    async def _handle_query(self, request, writer: asyncio.StreamWriter) -> None:
        timeout = self.config.client_timeout
        started = self.clock()
        try:
            spec = self._parse_query_spec(request)
        except ServiceError as exc:
            self.metrics.counter("serve.rejected", reason=exc.code).add(1)
            await send_error(
                writer, exc.status, exc.code, str(exc), timeout,
                retry_after=exc.retry_after,
            )
            return
        corpus, limits = spec["corpus"], spec["limits"]
        try:
            if self.drain.draining:
                raise DrainingError("service is draining", retry_after=5.0)
            # repro: ignore[RS009] -- acquire() bounds its own wait by the
            # request budget (asyncio.wait_for inside AdmissionQueue).
            await self.admission.acquire(budget=limits.remaining())
        except ServiceError as exc:
            self.metrics.counter("serve.shed", reason=exc.code).add(1)
            await send_error(
                writer, exc.status, exc.code, str(exc), timeout,
                retry_after=exc.retry_after,
            )
            return
        self.drain.track()
        breaker = self.breaker(corpus.name)
        outcome = None  # None = no verdict: shed pre-engine, or client vanished
        admitted = False
        try:
            run_limits = self.rebudget(limits)
            mode = breaker.admit()
            admitted = True
            outcome = await self._dispatch(spec, run_limits, mode, writer)
        except ServiceError as exc:
            self.metrics.counter("serve.shed", reason=exc.code).add(1)
            await send_error(
                writer, exc.status, exc.code, str(exc), timeout,
                retry_after=exc.retry_after,
            )
        finally:
            if outcome is None:
                if admitted:
                    breaker.abandon()
            else:
                if outcome == "failed":
                    breaker.record_failure()
                    self.metrics.counter("serve.request_errors").add(1)
                else:
                    breaker.record_success()
                    if outcome == "interrupted":
                        self.metrics.counter("serve.interrupted").add(1)
                    else:
                        self.metrics.counter("serve.served").add(1)
                self._record_breaker_state(breaker)
            self.drain.untrack()
            self.admission.release()
            self.metrics.histogram("serve.request_seconds").observe(
                max(0.0, self.clock() - started)
            )

    def _record_breaker_state(self, breaker: CircuitBreaker) -> None:
        for state, count in breaker.transitions.items():
            counter = self.metrics.counter(
                "serve.breaker_transitions", corpus=breaker.name, state=state
            )
            if counter.value < count:
                counter.add(count - counter.value)

    def _parse_query_spec(self, request) -> dict[str, Any]:
        body = request.json()
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        if "corpus" not in body or "query" not in body:
            raise BadRequestError('request needs "corpus" and "query" fields')
        corpus = self.registry.get(str(body["corpus"]))
        query = body["query"]
        if not isinstance(query, str):
            raise BadRequestError('"query" must be a string')
        self.registry.parse(query)  # syntax-check before spending a slot
        try:
            budget = float(body.get("budget", self.config.default_budget))
            offset = int(body.get("offset", 0))
            workers = int(body.get("workers", 0))
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"bad numeric field: {exc}") from exc
        if budget <= 0:
            raise BadRequestError('"budget" must be positive')
        budget = min(budget, self.config.max_budget)
        if offset < 0:
            raise BadRequestError('"offset" cannot be negative')
        checkpoint = body.get("checkpoint")
        if checkpoint is not None:
            if self.config.checkpoint_dir is None:
                raise BadRequestError("checkpointed dispatch is not enabled")
            if workers < 1:
                raise BadRequestError('"checkpoint" requires "workers" >= 1')
            if not _CHECKPOINT_ID.match(str(checkpoint)):
                raise BadRequestError('"checkpoint" must match [A-Za-z0-9_.-]{1,64}')
        engine = str(body.get("engine", self.config.default_engine))
        inject_faults = bool(body.get("inject_faults", False))
        if inject_faults and not self.config.allow_fault_injection:
            raise BadRequestError("fault injection is not enabled on this server")
        return {
            "corpus": corpus,
            "query": query,
            "engine": engine,
            "offset": offset,
            "workers": workers,
            "checkpoint": checkpoint,
            "resume": bool(body.get("resume", False)),
            "inject_faults": inject_faults,
            "limits": self.base_limits(budget),
        }

    # -- dispatch -----------------------------------------------------

    async def _dispatch(
        self, spec: dict, run_limits: Limits, mode: str, writer: asyncio.StreamWriter
    ) -> str:
        """Run the admitted request; returns "served"/"interrupted"/"failed"."""
        if spec["workers"] >= 1:
            return await self._dispatch_pool(spec, run_limits, mode, writer)
        return await self._dispatch_streaming(spec, run_limits, mode, writer)

    async def _dispatch_streaming(
        self, spec: dict, run_limits: Limits, mode: str, writer: asyncio.StreamWriter
    ) -> str:
        corpus: Corpus = spec["corpus"]
        loop = asyncio.get_running_loop()
        prepared = self.registry.compile(
            spec["query"], engine=spec["engine"], limits=run_limits
        )
        stream = NdjsonStream(writer, self.config.client_timeout)

        if corpus.format == "json":
            # Single document: run over the shared stage-1 index.
            try:
                # corpus.indexed() may run the stage-1 build plus the
                # sidecar's flock/mmap dance on a cold cache — disk I/O
                # that belongs on the executor, not the loop thread.
                values = await loop.run_in_executor(
                    self.executor,
                    lambda: prepared.run(corpus.indexed(prepared)).values(),
                )
            except ReproError as exc:
                await stream.start()
                await stream.finish(
                    {"error": type(exc).__name__, "message": str(exc), "index": 0}
                )
                return self._classify_error(exc)
            await stream.start()
            await stream.send_line({"index": 0, "values": values})
            await stream.finish(
                {"done": True, "records": 1, "emitted": len(values),
                 "skipped": 0, "mode": mode}
            )
            return "served"

        records = corpus.records_for(mode)
        n = len(records)
        i = min(spec["offset"], n)
        emitted = 0
        skipped = 0
        await stream.start()
        while i < n:
            if self.drain.interrupting:
                await stream.finish(
                    {"interrupted": True, "next_index": i,
                     "emitted": emitted, "skipped": skipped}
                )
                return "interrupted"
            remaining = run_limits.remaining()
            if remaining is not None and remaining <= 0:
                await stream.finish(
                    {"error": "DeadlineExceededError",
                     "message": "request budget exhausted mid-stream",
                     "index": i, "emitted": emitted}
                )
                return "served"  # the *client's* budget, not corpus health
            batch_end = min(n, i + self.config.batch_size)
            out = await loop.run_in_executor(
                self.executor, _run_record_batch, prepared, records, i, batch_end
            )
            for j, item in zip(range(i, batch_end), out):
                if item[0] == "ok":
                    await stream.send_line({"index": j, "values": item[1]})
                    emitted += len(item[1])
                else:
                    _tag, error, message = item
                    if error == "DeadlineExceededError":
                        await stream.finish(
                            {"error": error, "message": message,
                             "index": j, "emitted": emitted}
                        )
                        return "served"
                    if mode == "strict":
                        await stream.finish(
                            {"error": error, "message": message,
                             "index": j, "emitted": emitted}
                        )
                        return "failed"
                    skipped += 1
                    await stream.send_line({"index": j, "skipped": error})
            i = batch_end
        await stream.finish(
            {"done": True, "records": n, "emitted": emitted,
             "skipped": skipped, "mode": mode}
        )
        # A lenient pass that salvaged nothing is still a failing corpus.
        if skipped and emitted == 0 and skipped * 2 >= (n - min(spec["offset"], n)):
            return "failed"
        return "served"

    async def _dispatch_pool(
        self, spec: dict, run_limits: Limits, mode: str, writer: asyncio.StreamWriter
    ) -> str:
        """Dispatch onto the fault-tolerant process pool (jittered backoff).

        Used for heavy corpora (``"workers": N``) and for checkpointed,
        resumable service runs — the pool inherits the request deadline
        via ``limits=`` and its restart backoff is fully jittered.
        """
        from repro.checkpoint.store import CheckpointStore
        from repro.parallel.real_pool import run_records_pool_resilient

        corpus: Corpus = spec["corpus"]
        loop = asyncio.get_running_loop()
        records = corpus.records_for(mode)
        ck_path = None
        if spec["checkpoint"] is not None:
            ck_path = (
                FsPath(self.config.checkpoint_dir)
                / f"{corpus.name}-{spec['checkpoint']}.ckpt"
            )
        drain = self.drain

        def run_pool():
            # Checkpoint-dir mkdir and store recovery touch the disk;
            # both happen here, on the executor thread, not the loop.
            store = None
            if ck_path is not None:
                ck_path.parent.mkdir(parents=True, exist_ok=True)
                store = CheckpointStore(ck_path)
            return run_records_pool_resilient(
                spec["query"],
                records,
                n_workers=spec["workers"],
                limits=run_limits,
                metrics=self.metrics,
                inject_faults=spec["inject_faults"],
                checkpoint=store,
                checkpoint_every=max(self.config.batch_size, 1),
                resume=spec["resume"],
                stop=(lambda cursor: drain.interrupting) if ck_path is not None else None,
            )

        stream = NdjsonStream(writer, self.config.client_timeout)
        try:
            result = await loop.run_in_executor(self.executor, run_pool)
        except ReproError as exc:
            await stream.start()
            await stream.finish(
                {"error": type(exc).__name__, "message": str(exc), "index": 0}
            )
            return self._classify_error(exc)
        await stream.start()
        emitted = 0
        for idx, values in enumerate(result.values):
            if values is not None:
                await stream.send_line({"index": idx, "values": values})
                emitted += len(values)
        for failure in result.failures:
            await stream.send_line(
                {"index": failure.index, "skipped": failure.error}
            )
        info = result.checkpoint
        if info is not None and info.interrupted:
            await stream.finish(
                {"interrupted": True, "next_index": "checkpointed",
                 "emitted": emitted, "skipped": len(result.failures),
                 "checkpointed": True}
            )
            return "interrupted"
        await stream.finish(
            {"done": True, "records": len(result.values), "emitted": emitted,
             "skipped": len(result.failures), "mode": mode,
             "worker_crashes": result.worker_crashes}
        )
        if result.failures and result.records_ok == 0:
            return "failed"
        return "served"

    @staticmethod
    def _classify_error(exc: ReproError) -> str:
        """Deadline errors are the client's budget; the rest vote failure."""
        return "served" if isinstance(exc, DeadlineExceededError) else "failed"


def _run_record_batch(prepared, records, start: int, stop: int) -> list[tuple]:
    """Executor-side: evaluate one batch, capturing per-record errors."""
    out: list[tuple] = []
    for j in range(start, stop):
        record = records.record(j)
        try:
            out.append(("ok", prepared.run(record).values()))
        except ReproError as exc:
            out.append(("err", type(exc).__name__, str(exc)))
        except ValueError as exc:
            out.append(("err", "UndecodableMatch", str(exc)))
    return out
