"""Service-level errors: every rejection the front door can hand a client.

Each error maps to exactly one HTTP status and a stable machine-readable
``code`` — the chaos harness asserts the service *only* ever answers
with one of these (or a complete 200 stream), so new rejection paths
must be added here, not improvised inline.

The hierarchy mirrors the overload story:

- 400/404 — the request itself is wrong (``bad_request`` /
  ``unknown_corpus``);
- 429 — **shed**: the service is healthy but chose not to do the work
  (admission queue full, or the request's budget expired while it
  queued).  Always carries ``Retry-After``;
- 503 — **unavailable**: draining for shutdown or a corpus breaker is
  open.  Breaker rejections carry ``Retry-After`` equal to the
  remaining cooldown.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """Base for every client-visible service rejection."""

    status: int = 500
    code: str = "service_error"

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        #: Seconds the client should wait before retrying (``Retry-After``).
        self.retry_after = retry_after


class BadRequestError(ServiceError):
    """Malformed request body, unparseable query, bad parameters."""

    status = 400
    code = "bad_request"


class UnknownCorpusError(ServiceError):
    """The request names a corpus that was never registered."""

    status = 404
    code = "unknown_corpus"


class ShedError(ServiceError):
    """Load shedding: the service refused the work to protect itself."""

    status = 429
    code = "shed"


class QueueFullError(ShedError):
    """The bounded admission queue is at capacity."""

    code = "queue_full"


class BudgetExpiredError(ShedError):
    """The request's wall-clock budget ran out while it was queued.

    Shedding here is the deadline-propagation contract: a request whose
    budget is already spent must never reach an engine — running it
    would burn a worker on a foregone :class:`DeadlineExceededError`.
    """

    code = "budget_expired"


class UnavailableError(ServiceError):
    """The service (or one corpus) is temporarily not taking work."""

    status = 503
    code = "unavailable"


class DrainingError(UnavailableError):
    """SIGTERM received: finishing in-flight work, accepting nothing new."""

    code = "draining"


class BreakerOpenError(UnavailableError):
    """The per-corpus circuit breaker is open (repeated engine errors)."""

    code = "breaker_open"
