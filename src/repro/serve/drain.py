"""Graceful drain: SIGTERM means finish what you started, take no more.

Shutdown sequencing for a service with long streamed responses:

1. ``begin()`` — flip to draining.  ``/readyz`` turns 503 (the load
   balancer stops routing here), new ``/query`` requests get 503
   ``draining``, the listener stops accepting.
2. Grace window — in-flight streams get ``grace`` seconds to finish
   naturally.  Handlers register with :meth:`track` /
   :meth:`untrack`.
3. Interrupt — past the grace window, :meth:`interrupting` turns true;
   the streaming loop checks it at every batch boundary and ends the
   response with an ``interrupted`` terminator (checkpointing
   pool-dispatched work between segments), so the client knows exactly
   where to resume.
4. ``wait_drained()`` returns once the last in-flight request ends; the
   caller flushes metrics and exits 0.

A second SIGTERM (or SIGINT) skips straight to the interrupt phase.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable


class DrainCoordinator:
    def __init__(self, grace: float = 5.0, clock: Callable[[], float] = time.monotonic) -> None:
        self.grace = grace
        self.clock = clock
        self.draining = False
        self.force_interrupt = False
        self._began_at: float | None = None
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._drain_started = asyncio.Event()

    # -- request tracking ---------------------------------------------

    def track(self) -> None:
        self.inflight += 1
        self._idle.clear()

    def untrack(self) -> None:
        self.inflight = max(0, self.inflight - 1)
        if self.inflight == 0:
            self._idle.set()

    # -- lifecycle ----------------------------------------------------

    def begin(self) -> None:
        if self.draining:
            # Second signal: operator is impatient — stop being polite.
            self.force_interrupt = True
            return
        self.draining = True
        self._began_at = self.clock()
        self._drain_started.set()

    @property
    def interrupting(self) -> bool:
        """True once in-flight streams should stop at the next boundary."""
        if not self.draining:
            return False
        if self.force_interrupt:
            return True
        return (self.clock() - self._began_at) >= self.grace

    async def wait_begun(self) -> None:
        # repro: ignore[RS009] -- deliberately indefinite: this is the
        # serve-forever sleep, woken only by SIGTERM/SIGINT.
        await self._drain_started.wait()

    async def wait_drained(self, timeout: float | None = None) -> bool:
        """Wait for in-flight work to end; True if it did in time."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False
