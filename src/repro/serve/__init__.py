"""``repro.serve``: the hardened query service front door.

An asyncio HTTP service (stdlib only — no framework dependency) that
serves JSONPath queries over registered corpora with production
robustness as the core design:

- **bounded admission** — at most N running + M queued; everything
  beyond that is shed with 429 + ``Retry-After``
  (:mod:`~repro.serve.admission`);
- **deadline propagation** — each request's wall-clock budget becomes a
  :class:`~repro.resilience.Limits` deadline; queue time is charged to
  the budget and the engine runs under exactly what remains
  (:meth:`~repro.serve.app.QueryService.rebudget`);
- **per-corpus circuit breakers** — repeated engine errors degrade a
  corpus to lenient-resync mode, then open fully with cooldown
  (:mod:`~repro.serve.breaker`);
- **graceful drain** — SIGTERM stops admissions, lets in-flight streams
  finish within a grace window, then interrupts them at batch
  boundaries with a resumable terminator (:mod:`~repro.serve.drain`);
- **streamed NDJSON** with a mandatory terminator line, so a truncated
  response is always detectable (:mod:`~repro.serve.protocol`).

Boot it with ``python -m repro serve --corpus name=path.jsonl``; drive
it under faults with ``benchmarks/serve_chaos.py``.  See
``docs/serving.md``.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.app import QueryService, ServeConfig
from repro.serve.breaker import CLOSED, DEGRADED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.drain import DrainCoordinator
from repro.serve.errors import (
    BadRequestError,
    BreakerOpenError,
    BudgetExpiredError,
    DrainingError,
    QueueFullError,
    ServiceError,
    ShedError,
    UnavailableError,
    UnknownCorpusError,
)
from repro.serve.registry import Corpus, CorpusRegistry

__all__ = [
    "AdmissionQueue",
    "BadRequestError",
    "BreakerOpenError",
    "BudgetExpiredError",
    "CLOSED",
    "CircuitBreaker",
    "Corpus",
    "CorpusRegistry",
    "DEGRADED",
    "DrainCoordinator",
    "DrainingError",
    "HALF_OPEN",
    "OPEN",
    "QueryService",
    "QueueFullError",
    "ServeConfig",
    "ServiceError",
    "ShedError",
    "UnavailableError",
    "UnknownCorpusError",
]
