"""``python -m repro serve``: boot the query service front door.

Corpora are registered at startup with repeated ``--corpus`` flags::

    python -m repro serve --port 8765 \
        --corpus twitter=data/twitter.jsonl \
        --corpus doc=data/single.json:json

Runs until SIGTERM/SIGINT, then drains gracefully (finish or interrupt
in-flight streams, flush metrics) and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ReproError
from repro.serve.app import QueryService, ServeConfig
from repro.serve.registry import CorpusRegistry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve registered corpora over HTTP (see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port (0 picks a free one, printed at boot)")
    parser.add_argument(
        "--corpus", action="append", default=[], metavar="NAME=PATH[:FORMAT]",
        help="register a corpus (FORMAT: jsonl, json, concatenated; "
             "default jsonl); repeatable",
    )
    parser.add_argument("--max-active", type=int, default=4,
                        help="concurrent requests allowed to run")
    parser.add_argument("--max-queued", type=int, default=16,
                        help="requests allowed to wait; beyond this, shed 429")
    parser.add_argument("--default-budget", type=float, default=30.0,
                        help="wall-clock budget (s) when the request names none")
    parser.add_argument("--max-budget", type=float, default=300.0)
    parser.add_argument("--client-timeout", type=float, default=10.0,
                        help="bound on every client-paced read/write (s)")
    parser.add_argument("--drain-grace", type=float, default=5.0,
                        help="seconds in-flight streams get after SIGTERM")
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--degrade-after", type=int, default=3)
    parser.add_argument("--open-after", type=int, default=6)
    parser.add_argument("--breaker-cooldown", type=float, default=5.0)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="enable checkpointed pool dispatch under this dir")
    parser.add_argument("--index-cache", default=None, metavar="DIR",
                        help="persist structural-index sidecars here so "
                             "restarts (and sibling processes) skip stage 1")
    parser.add_argument("--metrics-file", default=None,
                        help="flush final Prometheus text here on shutdown")
    parser.add_argument("--engine", default="jsonski", dest="default_engine")
    parser.add_argument("--allow-fault-injection", action="store_true",
                        help="honor per-request 'inject_faults' (chaos testing only)")
    parser.add_argument("--loopguard", action="store_true",
                        help="watch the event loop for blocking stalls >= 50ms "
                             "and report them at shutdown (dev/chaos runs)")
    return parser


def parse_corpus_spec(spec: str) -> tuple[str, str, str]:
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ValueError(f"--corpus expects NAME=PATH[:FORMAT], got {spec!r}")
    path, sep, format = rest.rpartition(":")
    if sep and format in ("jsonl", "json", "concatenated"):
        return name, path, format
    return name, rest, "jsonl"


def main(argv: list[str] | None = None, out=None, err=None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    args = build_parser().parse_args(argv)

    registry = CorpusRegistry(index_cache=args.index_cache)
    try:
        for spec in args.corpus:
            name, path, format = parse_corpus_spec(spec)
            corpus = registry.register_file(name, path, format=format)
            print(f"registered corpus {name!r}: {corpus.records} records "
                  f"({format})", file=out)
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=err)
        return 2

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_active=args.max_active,
        max_queued=args.max_queued,
        default_budget=args.default_budget,
        max_budget=args.max_budget,
        client_timeout=args.client_timeout,
        drain_grace=args.drain_grace,
        batch_size=args.batch_size,
        degrade_after=args.degrade_after,
        open_after=args.open_after,
        breaker_cooldown=args.breaker_cooldown,
        checkpoint_dir=args.checkpoint_dir,
        metrics_path=args.metrics_file,
        default_engine=args.default_engine,
        allow_fault_injection=args.allow_fault_injection,
    )
    service = QueryService(registry, config)

    async def boot() -> int:
        await service.start()
        guard = None
        if args.loopguard:
            from repro.serve.loopguard import LoopGuard

            guard = LoopGuard()
            guard.install(asyncio.get_running_loop())
        print(f"serving on {config.host}:{service.port}", file=out, flush=True)
        service.install_signal_handlers()
        await service.drain.wait_begun()
        print("draining...", file=out, flush=True)
        await service.drain_and_stop()
        if guard is not None:
            guard.stop()
            print(guard.summary(), file=out, flush=True)
            for event in guard.blocked():
                print(f"loopguard event ({event.source}, "
                      f"{event.duration * 1000:.1f}ms):\n{event.stack}",
                      file=err, flush=True)
        return 0

    try:
        code = asyncio.run(boot())
    except KeyboardInterrupt:  # signal handler not yet installed: still clean
        return 0
    print("drained, bye", file=out, flush=True)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
