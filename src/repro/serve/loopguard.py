"""Dev-mode event-loop blocking detector: the runtime half of RS012.

The static rule proves no *known* blocking call is reachable from the
loop thread; this guard catches what the call graph cannot see — C
extensions, dynamic dispatch, a dependency growing a ``time.sleep`` —
by measuring the loop itself.  A watchdog thread posts a probe onto the
loop every ``interval`` seconds via ``call_soon_threadsafe`` and times
how long the loop takes to run it.  A healthy loop turns a probe around
in microseconds; a probe that takes ``threshold`` (default 50 ms, far
above GIL scheduling jitter) means the loop thread was wedged in one
callback — and the watchdog, which is still awake while the loop is
stuck, samples the loop thread's stack mid-stall so the report names
the offender, not just the delay.

Complementary (opt-in, ``debug=True``): asyncio's own slow-callback
log.  The guard sets ``loop.slow_callback_duration`` to the same
threshold and captures the ``Executing <Handle ...> took N seconds``
records through a logging handler.  That channel only fires when the
loop runs in debug mode, which taxes every task with source-traceback
capture — so the chaos harness runs probe-only and the debug channel
stays a local-diagnosis tool.

Usage (see ``repro.serve.cli --loopguard``)::

    guard = LoopGuard()
    guard.install(asyncio.get_running_loop())
    ...  # serve traffic
    guard.stop()
    print(guard.summary())   # "loopguard: 0 blocking events >= 50ms"
"""

from __future__ import annotations

import asyncio
import logging
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field


@dataclass
class BlockEvent:
    """One observed loop stall."""

    duration: float
    #: Loop-thread stack sampled while the stall was in progress
    #: (empty when the stall ended before the sampler ran).
    stack: str = ""
    source: str = "probe"  # "probe" or "slow-callback"


class _SlowCallbackHandler(logging.Handler):
    """Captures asyncio's debug-mode slow-callback records."""

    def __init__(self, guard: "LoopGuard") -> None:
        super().__init__(level=logging.WARNING)
        self._guard = guard

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "Executing" in message and "took" in message:
            try:
                duration = float(message.rsplit("took", 1)[1].split()[0])
            except (IndexError, ValueError):
                duration = self._guard.threshold
            self._guard._record(BlockEvent(duration, message, "slow-callback"))


@dataclass
class LoopGuard:
    """Watchdog for one event loop.  Install from the loop thread."""

    threshold: float = 0.05
    interval: float = 0.01
    #: How long to keep waiting for a wedged probe before giving up on
    #: it (the loop may be gone entirely, e.g. mid-shutdown).
    hard_timeout: float = 5.0
    debug: bool = False
    events: list[BlockEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread_ident: int | None = None
        self._log_handler: _SlowCallbackHandler | None = None

    # -- lifecycle -----------------------------------------------------

    def install(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start watching ``loop``.  Must be called on the loop's thread
        (so the watchdog knows which stack to sample)."""
        if self._thread is not None:
            raise RuntimeError("loopguard already installed")
        self._loop = loop
        self._loop_thread_ident = threading.get_ident()
        loop.slow_callback_duration = self.threshold
        if self.debug:
            loop.set_debug(True)
            self._log_handler = _SlowCallbackHandler(self)
            logging.getLogger("asyncio").addHandler(self._log_handler)
        self._thread = threading.Thread(
            target=self._watch, name="loopguard", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.hard_timeout)
            self._thread = None
        if self._log_handler is not None:
            logging.getLogger("asyncio").removeHandler(self._log_handler)
            self._log_handler = None

    # -- the watchdog --------------------------------------------------

    def _watch(self) -> None:
        assert self._loop is not None
        while not self._stop.wait(self.interval):
            loop = self._loop
            if loop.is_closed():
                return
            turned = threading.Event()
            started = time.monotonic()
            try:
                loop.call_soon_threadsafe(turned.set)
            except RuntimeError:
                return  # loop closed under us: shutdown, not a stall
            stack = ""
            if not turned.wait(self.threshold):
                stack = self._sample_loop_stack()
                if not turned.wait(self.hard_timeout):
                    # Probe never ran: shutdown path dropped it, or the
                    # loop is hard-wedged.  Record only if the loop is
                    # still alive — a closed loop is not a stall.
                    if not loop.is_closed() and not self._stop.is_set():
                        self._record(BlockEvent(
                            time.monotonic() - started, stack, "probe"
                        ))
                    return
            duration = time.monotonic() - started
            if duration >= self.threshold and not self._stop.is_set():
                self._record(BlockEvent(duration, stack, "probe"))

    def _sample_loop_stack(self) -> str:
        frame = sys._current_frames().get(self._loop_thread_ident or -1)
        if frame is None:
            return ""
        return "".join(traceback.format_stack(frame, limit=12))

    def _record(self, event: BlockEvent) -> None:
        with self._lock:
            self.events.append(event)

    # -- reporting -----------------------------------------------------

    def blocked(self) -> list[BlockEvent]:
        with self._lock:
            return list(self.events)

    def summary(self) -> str:
        """One parseable line, asserted by benchmarks/serve_chaos.py."""
        events = self.blocked()
        worst = max((e.duration for e in events), default=0.0)
        return (
            f"loopguard: {len(events)} blocking events >= "
            f"{int(self.threshold * 1000)}ms (max {worst * 1000:.1f}ms)"
        )
