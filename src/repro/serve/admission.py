"""Bounded admission: at most N running, at most M waiting, shed the rest.

The service's overload contract is *shed, don't stall*: a request either
gets a slot promptly, waits in a **bounded** FIFO, or is rejected with
429 + ``Retry-After`` immediately.  There is deliberately no unbounded
queue anywhere (RS009 enforces this package-wide) — an unbounded queue
converts overload into latency, which converts into client timeouts,
which converts into retries, which is how services melt.

Waiting is budget-aware: a waiter sleeps at most its remaining
wall-clock budget, so a request that queues past its own deadline sheds
as ``budget_expired`` without ever touching an engine.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable

from repro.serve.errors import BudgetExpiredError, QueueFullError


class AdmissionQueue:
    """FIFO admission with ``max_active`` slots and ``max_queued`` waiters.

    Not thread-safe: touch it only from the event loop (the service's
    single-threaded control plane; engine work happens in executors
    *after* admission).
    """

    def __init__(
        self,
        max_active: int,
        max_queued: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be at least 1")
        if max_queued < 0:
            raise ValueError("max_queued cannot be negative")
        self.max_active = max_active
        self.max_queued = max_queued
        self.clock = clock
        self.active = 0
        self._waiters: deque[asyncio.Future] = deque()
        #: Cumulative outcomes, mirrored into /metrics by the service.
        self.admitted = 0
        self.shed_full = 0
        self.shed_expired = 0

    def __len__(self) -> int:
        return len(self._waiters)

    def retry_after_hint(self) -> float:
        """Crude ``Retry-After``: assume one slot frees per second."""
        backlog = len(self._waiters) + max(0, self.active - self.max_active + 1)
        return max(1.0, float(backlog))

    async def acquire(self, budget: float | None = None) -> None:
        """Take a slot, waiting at most ``budget`` seconds in the queue.

        Raises :class:`QueueFullError` when the waiting line is full and
        :class:`BudgetExpiredError` when the budget runs out first (or
        was already spent on arrival).
        """
        if budget is not None and budget <= 0:
            self.shed_expired += 1
            raise BudgetExpiredError(
                "request budget expired before admission", retry_after=1.0
            )
        if self.active < self.max_active and not self._waiters:
            self.active += 1
            self.admitted += 1
            return
        if len(self._waiters) >= self.max_queued:
            self.shed_full += 1
            raise QueueFullError(
                f"admission queue full ({self.active} active, "
                f"{len(self._waiters)} queued)",
                retry_after=self.retry_after_hint(),
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, budget)
        except asyncio.TimeoutError:
            # wait_for cancelled the waiter; but if release() granted the
            # slot in the same tick, hand it back so it isn't leaked.
            if waiter.done() and not waiter.cancelled():
                self.release()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:  # already popped by release()
                    pass
            self.shed_expired += 1
            raise BudgetExpiredError(
                "request budget expired while queued", retry_after=1.0
            ) from None
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                self.release()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            raise
        self.admitted += 1

    def release(self) -> None:
        """Free a slot; hands it to the oldest live waiter if any."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)  # slot transfers: active unchanged
                return
        self.active = max(0, self.active - 1)
