"""Exception hierarchy for the JSONSki reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class JsonPathSyntaxError(ReproError):
    """A JSONPath expression could not be parsed.

    Carries the offending expression and the character offset at which
    parsing failed, so tooling can point at the error location.
    """

    def __init__(self, message: str, expression: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position} in {expression!r})")
        self.expression = expression
        self.position = position


class UnsupportedQueryError(ReproError):
    """A parsed JSONPath uses a feature a particular engine cannot run."""


class JsonSyntaxError(ReproError):
    """The input stream is not well-formed JSON.

    ``position`` is the byte offset at which the problem was detected.
    Note that, as in the paper (Section 3.3), fast-forwarded segments are
    only validated at the level of brace/bracket pairing, so some malformed
    inputs inside skipped regions are *not* reported.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at byte {position})")
        self.position = position


class StreamExhaustedError(JsonSyntaxError):
    """The stream ended while a structure was still open."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(message, position)


class RecordTooLargeError(ReproError):
    """A single record exceeds an engine's supported size.

    Mirrors simdjson's documented 4 GB single-record limit (paper
    Section 5.4); the limit is configurable in
    :class:`repro.baselines.simdjson_like.SimdJsonLike`.
    """


def format_error_context(data: bytes, position: int, width: int = 30) -> str:
    """Render the input around an error position, gdb-style.

    Returns two lines: the (printable-sanitized) text surrounding
    ``position`` and a caret pointing at the offending byte.  Used by the
    CLI so a :class:`JsonSyntaxError` is actionable without a hex editor.
    """
    position = max(0, min(position, max(len(data) - 1, 0)))
    lo = max(0, position - width)
    hi = min(len(data), position + width)
    snippet = data[lo:hi].decode("utf-8", "replace")
    printable = "".join(ch if ch.isprintable() else "." for ch in snippet)
    prefix = "..." if lo > 0 else ""
    suffix = "..." if hi < len(data) else ""
    caret_at = len(prefix) + len("".join(
        ch if ch.isprintable() else "." for ch in data[lo:position].decode("utf-8", "replace")
    ))
    return f"{prefix}{printable}{suffix}\n" + " " * caret_at + "^"
