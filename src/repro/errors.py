"""Exception hierarchy for the JSONSki reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations

from typing import Iterator


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class JsonPathSyntaxError(ReproError):
    """A JSONPath expression could not be parsed.

    Carries the offending expression and the character offset at which
    parsing failed, so tooling can point at the error location.
    """

    def __init__(self, message: str, expression: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position} in {expression!r})")
        self.expression = expression
        self.position = position


class UnsupportedQueryError(ReproError):
    """A parsed JSONPath uses a feature a particular engine cannot run."""


class JsonSyntaxError(ReproError):
    """The input stream is not well-formed JSON.

    ``position`` is the byte offset at which the problem was detected.
    Note that, as in the paper (Section 3.3), fast-forwarded segments are
    only validated at the level of brace/bracket pairing, so some malformed
    inputs inside skipped regions are *not* reported.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at byte {position})")
        self.position = position


class StreamExhaustedError(JsonSyntaxError):
    """The stream ended while a structure was still open."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(message, position)


class ResourceLimitError(ReproError):
    """A configured resource guard stopped the run.

    Base class for the :class:`repro.resilience.Limits` guard family:
    the input itself may or may not be well-formed, but processing it
    would exceed a limit the caller configured (or a safety default).
    """


class RecordTooLargeError(ResourceLimitError):
    """A single record exceeds an engine's supported size.

    Mirrors simdjson's documented 4 GB single-record limit (paper
    Section 5.4); the limit is configurable per engine through
    :class:`repro.resilience.Limits` (``max_record_bytes``).
    """


class DepthLimitError(ResourceLimitError):
    """Nesting exceeded the configured ``max_depth`` guard.

    Raised *before* the interpreter's own recursion limit so a nesting
    bomb surfaces as a diagnosable library error instead of a bare
    :class:`RecursionError`.  ``position`` is the byte offset of the
    container that crossed the limit (``-1`` when unknown, e.g. when a
    C-level parser hit the interpreter limit first).
    """

    def __init__(self, message: str, position: int = -1, depth: int | None = None) -> None:
        where = f" (at byte {position})" if position >= 0 else ""
        super().__init__(f"{message}{where}")
        self.position = position
        self.depth = depth


class ConfigurationError(ReproError, ValueError):
    """A caller supplied an invalid configuration value.

    Raised when an argument fails validation before any work starts
    (``keep < 1``, ``checkpoint_every < 1``, ``n_parts <= 0``).  Also a
    :class:`ValueError` so historical ``except ValueError`` callers keep
    working; new code should catch :class:`ReproError`.
    """


class InvariantError(ReproError, ValueError):
    """An internal consistency invariant was violated.

    Indicates a bug in this package (a match slot filled twice, an
    unknown AST node reached an exhaustive dispatch), not bad input.
    Also a :class:`ValueError` for backward compatibility with callers
    that caught the previous bare raises.
    """


class MatchTypeError(ReproError, TypeError):
    """A typed match accessor was used on a value of another type.

    Raised by :meth:`repro.engine.Match.as_int` and friends when the
    matched token is not of the requested type.  Also a
    :class:`TypeError` so it reads naturally at call sites that treat it
    as a conversion failure.
    """


class IndexSidecarError(ReproError):
    """A structural-index sidecar could not be used.

    Raised when a sidecar file fails validation — bad magic, format
    version mismatch, corpus content-hash mismatch, truncation, payload
    checksum mismatch, or an engine mode the format does not cover.
    Callers that hold the corpus bytes should treat this as "rebuild the
    index", never as fatal (see
    :meth:`repro.engine.prepared.IndexedBuffer.load_or_build`).

    :attr:`reason` is the machine-readable rejection category
    (``"missing"``, ``"checksum"``, ``"fingerprint"``, ...) that labels
    the ``storage.sidecar_rejects`` counter and decides quarantine
    (a ``"missing"`` sidecar is a cold start, not corruption).
    """

    def __init__(self, message: str, reason: str = "unspecified") -> None:
        super().__init__(message)
        self.reason = reason


class StorageError(ReproError):
    """A durable-storage operation failed in a way the shared substrate
    (:mod:`repro.storage`) owns — as opposed to an ``OSError`` surfaced
    verbatim from the filesystem."""


class LockTimeoutError(StorageError):
    """An advisory lock could not be acquired within its deadline.

    Raised by :func:`repro.storage.advisory_lock` when the holder stayed
    alive (a dead holder's lock is released by the kernel or stolen via
    the stale-lock protocol, never waited out).
    """


class CheckpointError(ReproError):
    """A checkpoint could not be used.

    Raised when a checkpoint file fails validation (bad magic, version
    mismatch, truncation, checksum mismatch) *and* no older generation is
    usable, or when a checkpoint does not belong to the run being resumed
    (different input payload, record count, or run kind).  A corrupt
    *newest* generation alone does not raise — the store falls back to
    the newest valid generation (see
    :class:`repro.checkpoint.CheckpointStore`).
    """


class DeadlineExceededError(ResourceLimitError):
    """A cooperative deadline expired while streaming.

    Engines check the deadline at container boundaries (and periodically
    inside long flat containers), so a run is abandoned within a bounded
    amount of extra work after the deadline passes — never mid-byte, and
    never by killing the process.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        where = f" (at byte {position})" if position >= 0 else ""
        super().__init__(f"{message}{where}")
        self.position = position


def _iter_chars(data: bytes, lo: int, hi: int) -> Iterator[tuple[int, str]]:
    """Yield ``(byte_start, char)`` over ``data[lo:hi]``, decoding UTF-8
    one character at a time so byte offsets map exactly onto rendered
    characters (undecodable bytes render as one char each)."""
    pos = lo
    while pos < hi:
        byte = data[pos]
        if byte < 0x80:
            length = 1
        elif byte >= 0xF0:
            length = 4
        elif byte >= 0xE0:
            length = 3
        elif byte >= 0xC0:
            length = 2
        else:  # bare continuation byte
            length = 1
        length = min(length, hi - pos)
        try:
            char = data[pos : pos + length].decode("utf-8")
        except UnicodeDecodeError:
            char, length = "�", 1
        yield pos, char
        pos += length


def format_error_context(data: bytes, position: int, width: int = 30) -> str:
    """Render the input around an error position, gdb-style.

    Returns two lines: the (printable-sanitized) text surrounding
    ``position`` and a caret pointing at the offending byte.  Used by the
    CLI so a :class:`JsonSyntaxError` is actionable without a hex editor.

    The snippet is decoded character by character with an explicit
    byte-to-character map, so the caret stays aligned on multi-byte UTF-8
    input (a prefix re-decode would collapse byte counts through
    replacement characters and drift).
    """
    position = max(0, min(position, max(len(data) - 1, 0)))
    lo = max(0, position - width)
    hi = min(len(data), position + width)
    prefix = "..." if lo > 0 else ""
    suffix = "..." if hi < len(data) else ""
    rendered: list[str] = []
    caret_at = 0
    for byte_start, char in _iter_chars(data, lo, hi):
        if byte_start <= position:
            caret_at = len(prefix) + len(rendered)
        rendered.append(char if char.isprintable() else ".")
    return f"{prefix}{''.join(rendered)}{suffix}\n" + " " * caret_at + "^"
