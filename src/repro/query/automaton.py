"""Pushdown query automaton for JSONPath matching (Figure 5).

A path of ``n`` steps yields the linear automaton of Figure 5: state ``q``
means "the first ``q`` steps are matched", state ``n`` is ACCEPT, and the
dead state is "no continuation possible".  The per-level stack of Figure 5
(rules [Key]/[Val]/[Ary-S]/[Ary-E]) lives on the engines' call stacks, so
this class exposes *pure* transitions:

- :meth:`on_key` — rule [Key]: consume an attribute name at the current
  level;
- :meth:`on_element` — rules [Ary-S]/[Com]: consume the array element at a
  given counter value (the engine maintains the counter).

To support the descendant extension ``..name`` the state is internally a
*frontier* (set of step indices, the standard NFA-to-DFA powerset, built
lazily); linear queries always have singleton frontiers, so nothing is
paid for the common case.

Beyond matching, the automaton answers the questions fast-forwarding needs
(Section 3.2):

- :meth:`expected_type` — the value type a match at this state must have
  (drives G1);
- :meth:`object_skippable` / :meth:`element_range` — whether G4 / G5
  apply;
- :meth:`can_match_in_object` / :meth:`can_match_in_array` — whether the
  current container is relevant at all.
"""

from __future__ import annotations

import enum

from repro.jsonpath.ast import (
    Child,
    Descendant,
    Index,
    MultiIndex,
    MultiName,
    Path,
    Slice,
    WildcardChild,
    WildcardIndex,
)


class MatchStatus(enum.Enum):
    """Engine-visible status of a state (paper's UNMATCHED/MATCHED/ACCEPT).

    ``ACCEPT_AND_MATCHED`` arises only under the descendant extension: the
    value is a match output *and* deeper matches may exist inside it.
    """

    UNMATCHED = "unmatched"
    MATCHED = "matched"
    ACCEPT = "accept"
    ACCEPT_AND_MATCHED = "accept+matched"

    @property
    def is_accept(self) -> bool:
        return self in (MatchStatus.ACCEPT, MatchStatus.ACCEPT_AND_MATCHED)

    @property
    def is_alive(self) -> bool:
        """True when deeper matching progress is still possible."""
        return self in (MatchStatus.MATCHED, MatchStatus.ACCEPT_AND_MATCHED)


#: Bit flags of :meth:`QueryAutomaton.status_flags` (the engines' hot path).
ALIVE = 1
ACCEPT = 2

_FLAGS_TO_STATUS = {
    0: MatchStatus.UNMATCHED,
    ALIVE: MatchStatus.MATCHED,
    ACCEPT: MatchStatus.ACCEPT,
    ALIVE | ACCEPT: MatchStatus.ACCEPT_AND_MATCHED,
}


class QueryAutomaton:
    """Lazily-determinized matching automaton for one :class:`Path`.

    All per-state guidance (status flags, expected type, G4/G5
    applicability) is memoized in lists indexed by state id — the engines
    query them once per container or attribute, millions of times per
    run.
    """

    def __init__(self, path: Path) -> None:
        if path.has_filter:
            from repro.errors import UnsupportedQueryError

            raise UnsupportedQueryError(
                "filter predicates are evaluated by query splitting in "
                "JsonSki (and by the tree baselines); the token-level "
                "automaton engines do not support them"
            )
        self.path = path
        self.steps = path.steps
        self._n = len(path.steps)
        self._state_ids: dict[frozenset[int], int] = {}
        self._frontiers: list[frozenset[int]] = []
        #: Per-state key-transition maps: {name_or_None: next_state}.
        self._key_maps: dict[int, dict[str | None, int]] = {}
        #: Per-state memo lists, grown on intern.
        self._flags: list[int] = []
        self._expected: list[str | None] = []
        self._skippable: list[bool | None] = []
        self._elem_memo: dict[tuple[int, int], int] = {}
        self._elem_range: dict[int, tuple[int, int | None] | None] = {}
        self._can_obj: dict[int, bool] = {}
        self._can_ary: dict[int, bool] = {}
        #: Names that appear in the query; all other names are equivalent.
        self._names = {
            s.name for s in self.steps if isinstance(s, (Child, Descendant))
        }
        for step in self.steps:
            if isinstance(step, MultiName):
                self._names.update(step.names)
        self.start_state = self._intern(frozenset([0]))
        self.dead_state = self._intern(frozenset())

    # ------------------------------------------------------------------
    # state interning

    def _intern(self, frontier: frozenset[int]) -> int:
        state = self._state_ids.get(frontier)
        if state is None:
            state = len(self._frontiers)
            self._state_ids[frontier] = state
            self._frontiers.append(frontier)
            flags = 0
            if self._n in frontier:
                flags |= ACCEPT
            if any(q < self._n for q in frontier):
                flags |= ALIVE
            self._flags.append(flags)
            self._expected.append(None)
            self._skippable.append(None)
        return state

    def frontier(self, state: int) -> frozenset[int]:
        """The step-index frontier behind an opaque state id."""
        return self._frontiers[state]

    def state_for_frontier(self, frontier) -> int:
        """State id for a step-index frontier — the inverse of :meth:`frontier`.

        State *ids* are interning-order dependent (they differ between two
        processes that streamed different prefixes), so a suspended run is
        serialized as frontiers and re-entered through this method
        (:mod:`repro.checkpoint.suspend`).  Unknown step indices are
        rejected so a checkpoint from a different query cannot silently
        produce a plausible-looking state.
        """
        members = frozenset(frontier)
        for q in members:
            if not isinstance(q, int) or not 0 <= q <= self._n:
                raise ValueError(
                    f"frontier member {q!r} is outside this query's steps (0..{self._n})"
                )
        return self._intern(members)

    # ------------------------------------------------------------------
    # transitions

    def on_key(self, state: int, name: str) -> int:
        """Rule [Key]: the state inside the value of attribute ``name``."""
        key_map = self._key_maps.get(state)
        if key_map is None:
            key_map = self._key_maps[state] = {}
        token = name if name in self._names else None
        cached = key_map.get(token, -1)
        if cached >= 0:
            return cached
        nxt: set[int] = set()
        for q in self._frontiers[state]:
            if q >= self._n:
                continue
            step = self.steps[q]
            if isinstance(step, Child):
                if step.name == name:
                    nxt.add(q + 1)
            elif isinstance(step, WildcardChild):
                nxt.add(q + 1)
            elif isinstance(step, MultiName):
                if name in step.names:
                    nxt.add(q + 1)
            elif isinstance(step, Descendant):
                nxt.add(q)  # keep descending
                if step.name == name:
                    nxt.add(q + 1)
        result = self._intern(frozenset(nxt))
        key_map[token] = result
        return result

    def on_element(self, state: int, index: int) -> int:
        """Rules [Ary-S]/[Com]: the state inside element ``index``."""
        # Element transitions recur heavily for small indices (every row of
        # a matrix-like dataset re-runs indices 0..k); memoize those.
        if index < 1024:
            memo_key = (state, index)
            cached = self._elem_memo.get(memo_key)
            if cached is not None:
                return cached
        else:
            memo_key = None
        nxt: set[int] = set()
        for q in self._frontiers[state]:
            if q >= self._n:
                continue
            step = self.steps[q]
            if isinstance(step, Index):
                if index == step.index:
                    nxt.add(q + 1)
            elif isinstance(step, Slice):
                if step.start <= index and (step.stop is None or index < step.stop):
                    nxt.add(q + 1)
            elif isinstance(step, WildcardIndex):
                nxt.add(q + 1)
            elif isinstance(step, MultiIndex):
                if index in step.indices:
                    nxt.add(q + 1)
            elif isinstance(step, Descendant):
                nxt.add(q)  # descendants traverse arrays transparently
        result = self._intern(frozenset(nxt))
        if memo_key is not None:
            self._elem_memo[memo_key] = result
        return result

    # ------------------------------------------------------------------
    # status and fast-forward guidance

    def status_flags(self, state: int) -> int:
        """Fast status: OR of :data:`ALIVE` and :data:`ACCEPT` (0 = dead)."""
        return self._flags[state]

    def status(self, state: int) -> MatchStatus:
        return _FLAGS_TO_STATUS[self._flags[state]]

    def can_match_in_object(self, state: int) -> bool:
        """Can any attribute of an object at this state make progress?"""
        cached = self._can_obj.get(state)
        if cached is None:
            cached = self._can_obj[state] = any(
                q < self._n and isinstance(self.steps[q], (Child, WildcardChild, MultiName, Descendant))
                for q in self._frontiers[state]
            )
        return cached

    def can_match_in_array(self, state: int) -> bool:
        """Can any element of an array at this state make progress?"""
        cached = self._can_ary.get(state)
        if cached is None:
            cached = self._can_ary[state] = any(
                q < self._n
                and isinstance(self.steps[q], (Index, Slice, WildcardIndex, MultiIndex, Descendant))
                for q in self._frontiers[state]
            )
        return cached

    def expected_type(self, state: int) -> str:
        """Type a matching attribute/element value must have (G1 inference).

        Returns ``'object'``, ``'array'``, or ``'unknown'``.  The answer is
        the unique :meth:`Path.value_kind` across the frontier, or
        ``'unknown'`` when the frontier disagrees or contains a descendant
        step (the paper's stated limitation for ``..``).
        """
        cached = self._expected[state]
        if cached is not None:
            return cached
        kinds: set[str] = set()
        for q in self._frontiers[state]:
            if q >= self._n:
                continue
            if isinstance(self.steps[q], Descendant):
                kinds = {"unknown"}
                break
            kinds.add(self.path.value_kind(q))
        result = kinds.pop() if len(kinds) == 1 else "unknown"
        self._expected[state] = result
        return result

    def object_skippable(self, state: int) -> bool:
        """G4 applicability: once one attribute matches, can the rest of
        the object be skipped?

        True iff every active step is a concrete :class:`Child` — object
        attribute names are unique, so at most one attribute can match.
        Wildcards and descendants can match several attributes, so they
        disable G4.
        """
        cached = self._skippable[state]
        if cached is None:
            frontier = self._frontiers[state]
            cached = bool(frontier) and all(
                q >= self._n or isinstance(self.steps[q], Child) for q in frontier
            )
            self._skippable[state] = cached
        return cached

    def element_range(self, state: int) -> tuple[int, int | None] | None:
        """G5 applicability: the index window relevant in an array here.

        Returns ``(start, stop)`` (stop ``None`` = unbounded) when a single
        index-type step governs the array, else ``None`` (no constraint to
        exploit).
        """
        if state in self._elem_range:
            return self._elem_range[state]
        ranges: list[tuple[int, int | None]] = []
        for q in self._frontiers[state]:
            if q >= self._n:
                continue
            step = self.steps[q]
            if isinstance(step, Index):
                ranges.append((step.index, step.index + 1))
            elif isinstance(step, Slice):
                ranges.append((step.start, step.stop))
            elif isinstance(step, WildcardIndex):
                ranges.append((0, None))
            elif isinstance(step, MultiIndex):
                # The G5 window of a union is its envelope: everything
                # before the smallest and after the largest index skips.
                ranges.append((step.indices[0], step.indices[-1] + 1))
            elif isinstance(step, Descendant):
                self._elem_range[state] = None
                return None
        result = ranges[0] if len(ranges) == 1 else None
        self._elem_range[state] = result
        return result


def compile_query(path: Path | str) -> QueryAutomaton:
    """Compile a path (or JSONPath text) into a :class:`QueryAutomaton`."""
    from repro.jsonpath.parser import parse_path

    if isinstance(path, str):
        path = parse_path(path)
    return QueryAutomaton(path)
