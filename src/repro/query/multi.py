"""Multi-query automaton: evaluate several JSONPaths in one pass.

The paper closes with "developers may exploit these fast-forward
functions for more opportunities in their own JSON analytics"
(Section 5.1); sharing one streaming pass between queries is the most
natural such opportunity.  The frontier construction of
:class:`repro.query.automaton.QueryAutomaton` generalizes directly:
elements become ``(query_id, step_index)`` pairs, and fast-forward
guidance is the *conjunction* of what every live query allows —

- a value type can be skipped (G1) only if **no** query could match it;
- the remainder of an object can be skipped (G4) only when every live
  branch targets the *same* concrete attribute name (otherwise another
  query's attribute may still appear);
- an array's G5 window is the envelope of all queries' index windows.

So a single extra query never corrupts results — it only (and exactly
when necessary) disables the sharper fast-forwards.
"""

from __future__ import annotations

from repro.jsonpath.ast import (
    Child,
    Descendant,
    Index,
    MultiIndex,
    MultiName,
    Path,
    Slice,
    WildcardChild,
    WildcardIndex,
)
from repro.jsonpath.parser import parse_path
from repro.query.automaton import ACCEPT, ALIVE

#: Frontier element: (query id, step index); step index == len(steps)
#: marks acceptance for that query.
_Item = tuple[int, int]


class MultiQueryAutomaton:
    """Frontier automaton over several paths; same interface as
    :class:`~repro.query.automaton.QueryAutomaton` plus
    :meth:`accepting`."""

    def __init__(self, paths: list[Path | str]) -> None:
        self.paths: list[Path] = [parse_path(p) if isinstance(p, str) else p for p in paths]
        if not self.paths:
            raise ValueError("at least one query is required")
        if any(p.has_filter for p in self.paths):
            from repro.errors import UnsupportedQueryError

            raise UnsupportedQueryError("filter predicates are not supported in multi-query mode")
        self._lens = [len(p.steps) for p in self.paths]
        self._state_ids: dict[frozenset[_Item], int] = {}
        self._frontiers: list[frozenset[_Item]] = []
        self._flags: list[int] = []
        self._accepting: list[tuple[int, ...]] = []
        self._key_maps: dict[int, dict[str | None, int]] = {}
        self._elem_memo: dict[tuple[int, int], int] = {}
        self._expected: list[str | None] = []
        self._skippable: list[bool | None] = []
        self._elem_range: dict[int, tuple[int, int | None] | None] = {}
        self._can_obj: dict[int, bool] = {}
        self._can_ary: dict[int, bool] = {}
        self._names: set[str] = set()
        for path in self.paths:
            for step in path.steps:
                if isinstance(step, (Child, Descendant)):
                    self._names.add(step.name)
                elif isinstance(step, MultiName):
                    self._names.update(step.names)
        self.start_state = self._intern(frozenset((qid, 0) for qid in range(len(self.paths))))
        self.dead_state = self._intern(frozenset())

    # ------------------------------------------------------------------

    def _intern(self, frontier: frozenset[_Item]) -> int:
        state = self._state_ids.get(frontier)
        if state is None:
            state = len(self._frontiers)
            self._state_ids[frontier] = state
            self._frontiers.append(frontier)
            accepting = tuple(sorted(qid for qid, q in frontier if q == self._lens[qid]))
            flags = ACCEPT if accepting else 0
            if any(q < self._lens[qid] for qid, q in frontier):
                flags |= ALIVE
            self._flags.append(flags)
            self._accepting.append(accepting)
            self._expected.append(None)
            self._skippable.append(None)
        return state

    def frontier(self, state: int) -> frozenset[_Item]:
        return self._frontiers[state]

    def accepting(self, state: int) -> tuple[int, ...]:
        """Ids of the queries for which this state is accepting."""
        return self._accepting[state]

    def status_flags(self, state: int) -> int:
        return self._flags[state]

    def _live_steps(self, state: int):
        for qid, q in self._frontiers[state]:
            if q < self._lens[qid]:
                yield qid, q, self.paths[qid].steps[q]

    # -- transitions -------------------------------------------------------

    def on_key(self, state: int, name: str) -> int:
        key_map = self._key_maps.get(state)
        if key_map is None:
            key_map = self._key_maps[state] = {}
        token = name if name in self._names else None
        cached = key_map.get(token, -1)
        if cached >= 0:
            return cached
        nxt: set[_Item] = set()
        for qid, q, step in self._live_steps(state):
            if isinstance(step, Child):
                if step.name == name:
                    nxt.add((qid, q + 1))
            elif isinstance(step, WildcardChild):
                nxt.add((qid, q + 1))
            elif isinstance(step, MultiName):
                if name in step.names:
                    nxt.add((qid, q + 1))
            elif isinstance(step, Descendant):
                nxt.add((qid, q))
                if step.name == name:
                    nxt.add((qid, q + 1))
        result = self._intern(frozenset(nxt))
        key_map[token] = result
        return result

    def on_element(self, state: int, index: int) -> int:
        if index < 1024:
            memo_key = (state, index)
            cached = self._elem_memo.get(memo_key)
            if cached is not None:
                return cached
        else:
            memo_key = None
        nxt: set[_Item] = set()
        for qid, q, step in self._live_steps(state):
            if isinstance(step, Index):
                if index == step.index:
                    nxt.add((qid, q + 1))
            elif isinstance(step, Slice):
                if step.start <= index and (step.stop is None or index < step.stop):
                    nxt.add((qid, q + 1))
            elif isinstance(step, WildcardIndex):
                nxt.add((qid, q + 1))
            elif isinstance(step, MultiIndex):
                if index in step.indices:
                    nxt.add((qid, q + 1))
            elif isinstance(step, Descendant):
                nxt.add((qid, q))
        result = self._intern(frozenset(nxt))
        if memo_key is not None:
            self._elem_memo[memo_key] = result
        return result

    # -- fast-forward guidance (conjunction across live queries) ------------

    def can_match_in_object(self, state: int) -> bool:
        cached = self._can_obj.get(state)
        if cached is None:
            cached = self._can_obj[state] = any(
                isinstance(step, (Child, WildcardChild, MultiName, Descendant))
                for _, _, step in self._live_steps(state)
            )
        return cached

    def can_match_in_array(self, state: int) -> bool:
        cached = self._can_ary.get(state)
        if cached is None:
            cached = self._can_ary[state] = any(
                isinstance(step, (Index, Slice, WildcardIndex, MultiIndex, Descendant))
                for _, _, step in self._live_steps(state)
            )
        return cached

    def expected_type(self, state: int) -> str:
        cached = self._expected[state]
        if cached is not None:
            return cached
        kinds: set[str] = set()
        for qid, q, step in self._live_steps(state):
            if isinstance(step, Descendant):
                kinds = {"unknown"}
                break
            kinds.add(self.paths[qid].value_kind(q))
        result = kinds.pop() if len(kinds) == 1 else "unknown"
        self._expected[state] = result
        return result

    def object_skippable(self, state: int) -> bool:
        """G4 across queries: sound only when every live branch waits for
        the *same* concrete attribute name — then the one match consumed
        them all (names are unique within an object)."""
        cached = self._skippable[state]
        if cached is None:
            names: set[str] = set()
            ok = bool(self._frontiers[state])
            for _, _, step in self._live_steps(state):
                if isinstance(step, Child):
                    names.add(step.name)
                else:
                    ok = False
                    break
            cached = ok and len(names) <= 1
            self._skippable[state] = cached
        return cached

    def element_range(self, state: int) -> tuple[int, int | None] | None:
        """G5 envelope across queries (None disables index skipping)."""
        if state in self._elem_range:
            return self._elem_range[state]
        starts: list[int] = []
        stops: list[int | None] = []
        result: tuple[int, int | None] | None
        for _, _, step in self._live_steps(state):
            if isinstance(step, Index):
                starts.append(step.index)
                stops.append(step.index + 1)
            elif isinstance(step, Slice):
                starts.append(step.start)
                stops.append(step.stop)
            elif isinstance(step, MultiIndex):
                starts.append(step.indices[0])
                stops.append(step.indices[-1] + 1)
            elif isinstance(step, WildcardIndex):
                starts.append(0)
                stops.append(None)
            elif isinstance(step, Descendant):  # no window under '..'
                self._elem_range[state] = None
                return None
            # Key-type steps cannot match in an array: they impose no
            # window of their own and are skipped here.
        if not starts:
            result = None
        else:
            start = min(starts)
            stop = None if any(s is None for s in stops) else max(s for s in stops if s is not None)
            result = (start, stop)
        self._elem_range[state] = result
        return result
