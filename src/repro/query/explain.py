"""Query plans: which fast-forward opportunities a query enables.

The paper's Section 3.2 derives fast-forward opportunities statically
from the query (value types per level, G4 applicability, G5 windows).
:func:`explain` surfaces that derivation as a human-readable plan —
useful for understanding why one query streams 10× faster than a
near-identical one, and exposed on the CLI as ``--explain``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jsonpath.ast import (
    Child,
    Descendant,
    Index,
    MultiIndex,
    Path,
    Slice,
    Step,
)
from repro.jsonpath.parser import parse_path


@dataclass(frozen=True)
class LevelPlan:
    """Static fast-forward plan for one path level."""

    depth: int
    step: Step
    #: Container kind this step selects from ('object'/'array'/'any').
    container: str
    #: Value type a match at this level must have ('object'/'array'/'unknown').
    expected_value: str
    #: G1 applies: siblings of the wrong type are skipped without reading names.
    g1_type_skip: bool
    #: G4 applies: after this step matches, the rest of the object is skipped.
    g4_object_skip: bool
    #: G5 window (start, stop) when the step constrains array indices.
    g5_window: tuple[int, int | None] | None

    def describe(self) -> str:
        parts = [f"level {self.depth}: {self.step.unparse()}  (selects from {self.container})"]
        if self.expected_value != "unknown":
            parts.append(f"matching value must be an {self.expected_value}")
        if self.g1_type_skip:
            parts.append("G1: skip siblings of the wrong type without reading names")
        if self.g4_object_skip:
            parts.append("G4: after the match, fast-forward to the object end")
        if self.g5_window is not None:
            start, stop = self.g5_window
            stop_text = "end" if stop is None else str(stop)
            parts.append(f"G5: skip elements outside [{start}:{stop_text}]")
        return "\n    ".join(parts)


@dataclass(frozen=True)
class QueryPlan:
    """The full static plan for a query."""

    path: Path
    levels: tuple[LevelPlan, ...]

    @property
    def has_descendant(self) -> bool:
        return self.path.has_descendant

    def describe(self) -> str:
        header = f"query: {self.path.unparse()}"
        notes = []
        if self.has_descendant:
            notes.append(
                "note: '..' disables type inference below it — levels after a "
                "descendant step stream without G1 skipping (paper Section 5.1)"
            )
        body = "\n".join("  " + level.describe() for level in self.levels)
        return "\n".join([header, body, *notes])


def explain(query: str | Path) -> QueryPlan:
    """Build the static fast-forward plan for ``query``.

    >>> print(explain("$.place.name").describe())  # doctest: +ELLIPSIS
    query: $.place.name
    ...
    """
    path = parse_path(query) if isinstance(query, str) else query
    below_descendant = False
    levels = []
    for depth, step in enumerate(path.steps):
        expected = "unknown" if below_descendant else path.value_kind(depth)
        g5: tuple[int, int | None] | None = None
        if isinstance(step, Index):
            g5 = (step.index, step.index + 1)
        elif isinstance(step, Slice):
            g5 = (step.start, step.stop)
        elif isinstance(step, MultiIndex):
            g5 = (step.indices[0], step.indices[-1] + 1)
        levels.append(
            LevelPlan(
                depth=depth,
                step=step,
                container=step.container,
                expected_value=expected,
                g1_type_skip=expected in ("object", "array"),
                g4_object_skip=isinstance(step, Child) and not below_descendant,
                g5_window=g5,
            )
        )
        if isinstance(step, Descendant):
            below_descendant = True
    return QueryPlan(path=path, levels=tuple(levels))
