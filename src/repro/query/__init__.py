"""Query automaton (paper Section 3.1, Figure 5).

The automaton tracks matching progress per level of the record; the
recursive-descent engines keep the per-level state on the call stack (the
paper's key simplification over JPStream's explicit dual-stack design), so
this package exposes *pure* transition functions over opaque state ids.
"""

from repro.query.automaton import MatchStatus, QueryAutomaton, compile_query
from repro.query.explain import QueryPlan, explain
from repro.query.multi import MultiQueryAutomaton

__all__ = ["MatchStatus", "MultiQueryAutomaton", "QueryAutomaton", "QueryPlan", "compile_query", "explain"]
