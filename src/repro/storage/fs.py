"""The syscall boundary every durable write goes through.

:class:`RealFS` is a thin, stateless veneer over the handful of
syscalls crash-consistency depends on — ``open``/``write``/``fsync``/
``close``/``replace``/``unlink`` plus the directory fsync that makes a
rename itself durable.  It exists so the fault-injection shim
(:class:`repro.storage.faultfs.FaultFS`) can interpose on *exactly* the
operations whose ordering the atomic-write protocol relies on: code
that writes persistent state calls ``fs.replace(...)`` instead of
``os.replace(...)``, and the chaos harness swaps the ``fs`` to fail or
kill the writer at every one of those boundaries.

Files are opened unbuffered (``buffering=0``): every ``fs.write`` is a
real ``write(2)``, so a simulated kill observes the same on-disk bytes
a real ``SIGKILL`` would — no user-space buffer silently flushed (or
lost) by the wrapper.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO

StrPath = str | os.PathLike[str]


class RealFS:
    """Direct passthrough to the OS.  Stateless; share the singleton
    :data:`REAL_FS` instead of constructing new instances."""

    #: A :class:`~repro.storage.faultfs.FaultFS` flips this once its
    #: simulated process has been killed; cleanup code (tmp unlink, lock
    #: release) checks it to avoid performing work a dead process could
    #: not have performed.
    crashed: bool = False

    # -- journaled syscall boundary ------------------------------------

    def open(self, path: StrPath) -> BinaryIO:
        """Open ``path`` for writing (truncating), unbuffered."""
        return open(path, "wb", buffering=0)

    def write(self, handle: BinaryIO, data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle: BinaryIO) -> None:
        os.fsync(handle.fileno())

    def replace(self, src: StrPath, dst: StrPath) -> None:
        os.replace(src, dst)

    def unlink(self, path: StrPath) -> None:
        os.unlink(path)

    def fsync_dir(self, path: StrPath) -> None:
        """Persist a rename by fsyncing its directory.

        Raises ``OSError`` where directories cannot be fsync'd; callers
        for whom durability of the *entry* is best-effort catch it.
        """
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- unjournaled helpers -------------------------------------------

    def close(self, handle: BinaryIO) -> None:
        handle.close()

    def track_fd(self, fd: int) -> None:
        """Register a raw descriptor (a lock file's) whose kernel state
        should die with the simulated process.  No-op for the real OS —
        the kernel already does this on exit."""

    def untrack_fd(self, fd: int) -> None:
        """Forget a descriptor registered with :meth:`track_fd`."""


#: The default filesystem every storage helper uses unless a shim is
#: injected.
REAL_FS = RealFS()


def as_path(path: StrPath) -> Path:
    return path if isinstance(path, Path) else Path(path)
