"""Crash-safe writes, stale-tmp sweeps, and corruption quarantine.

:func:`atomic_write` is the one durable-write protocol every
persistent-state writer uses (checkpoint generations, index sidecars,
dataset materialization — enforced by staticcheck rule RS011):

1. write to ``<name>.tmp<pid>`` *in the target directory* (same
   filesystem, so the rename is atomic; pid-suffixed, so two processes
   writing the same path never collide on the tmp name);
2. ``fsync`` the tmp file (its bytes are durable before the rename can
   make them visible);
3. ``os.replace`` onto the final name (readers see the complete old
   file or the complete new file, never a prefix);
4. ``fsync`` the parent directory, best effort (the rename itself
   survives a power cut on filesystems that honour directory fsync);
5. on *any* failure before the rename, unlink the tmp file — unless the
   process "died" (``fs.crashed``), in which case the orphan is exactly
   what a real kill leaves and :func:`sweep_stale_tmp` reclaims it.

Every syscall goes through an injectable :class:`~repro.storage.fs`
shim, which is how ``benchmarks/disk_chaos.py`` proves the protocol:
fail or kill the writer at every boundary, then assert a reader only
ever observes complete-old or complete-new state.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Iterable

from repro.observe.metrics import MetricsRegistry
from repro.storage.fs import REAL_FS, RealFS, StrPath, as_path
from repro.storage.metrics import resolve

#: Stale-tmp age bound: a ``.tmp<pid>`` older than this is an orphan of
#: a dead writer (live writers hold theirs for milliseconds).
DEFAULT_TMP_MAX_AGE = 3600.0

#: Suffix quarantined files are renamed to.
CORRUPT_SUFFIX = ".corrupt"


def tmp_path_for(path: Path) -> Path:
    """The pid-unique temporary name :func:`atomic_write` uses."""
    return path.with_name(path.name + f".tmp{os.getpid()}")


def atomic_write(
    path: StrPath,
    data: bytes | Iterable[bytes],
    *,
    fs: RealFS = REAL_FS,
    metrics: MetricsRegistry | None = None,
    kind: str = "file",
) -> Path:
    """Durably replace ``path`` with ``data`` (bytes or an iterable of
    byte chunks); returns the final path.

    Crash-safe at every boundary: a reader concurrent with — or after a
    kill of — this writer sees the complete old file or the complete
    new one.  A failed write never strands its temp file (``kind``
    labels the ``storage.saves``/``storage.save_errors`` counters).
    """
    registry = resolve(metrics)
    target = as_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_path_for(target)
    chunks: Iterable[bytes] = (data,) if isinstance(data, (bytes, bytearray)) else data
    try:
        handle = fs.open(tmp)
        try:
            for chunk in chunks:
                fs.write(handle, bytes(chunk))
            fs.fsync(handle)
        finally:
            fs.close(handle)
        fs.replace(tmp, target)
    except BaseException:
        registry.counter("storage.save_errors", kind=kind).add(1)
        if not fs.crashed:
            try:
                fs.unlink(tmp)
            except OSError:
                pass
        raise
    try:
        fs.fsync_dir(target.parent)
    except OSError:  # pragma: no cover - platform dependent
        pass
    registry.counter("storage.saves", kind=kind).add(1)
    return target


def sweep_stale_tmp(
    directory: StrPath,
    *,
    max_age: float = DEFAULT_TMP_MAX_AGE,
    fs: RealFS = REAL_FS,
    metrics: MetricsRegistry | None = None,
) -> list[Path]:
    """Remove orphaned ``*.tmp<pid>`` files older than ``max_age``
    seconds from ``directory``; returns the paths removed.

    Run on cache-dir open: a writer killed mid-:func:`atomic_write`
    leaves its temp file behind (by design — see the module docstring),
    and the age bound keeps the sweep from racing a *live* writer's
    seconds-old temp file.
    """
    registry = resolve(metrics)
    root = as_path(directory)
    removed: list[Path] = []
    if not root.is_dir():
        return removed
    cutoff = time.time() - max_age
    for entry in root.iterdir():
        stem, dot_tmp, pid = entry.name.rpartition(".tmp")
        if not dot_tmp or not stem or not pid.isdigit():
            continue
        try:
            if entry.stat().st_mtime > cutoff:
                continue
            fs.unlink(entry)
        except OSError:
            continue  # vanished concurrently, or not ours to remove
        removed.append(entry)
    if removed:
        registry.counter("storage.tmp_swept").add(len(removed))
    return removed


def quarantine(
    path: StrPath,
    reason: str,
    *,
    detail: str = "",
    fs: RealFS = REAL_FS,
    metrics: MetricsRegistry | None = None,
) -> Path | None:
    """Rename a corrupt file to ``<name>.corrupt`` and record why.

    The evidence-preserving alternative to silently rebuilding over a
    failed validation: the bad bytes stay on disk for a post-mortem, a
    ``<name>.corrupt.reason`` file says what check failed and when, and
    ``storage.quarantines{reason=...}`` counts it.  Returns the
    quarantine path, or ``None`` when the file vanished concurrently.
    """
    registry = resolve(metrics)
    source = as_path(path)
    dest = source.with_name(source.name + CORRUPT_SUFFIX)
    try:
        fs.replace(source, dest)
    except FileNotFoundError:
        return None
    registry.counter("storage.quarantines", reason=reason).add(1)
    note = (
        f"reason: {reason}\n"
        f"detail: {detail}\n"
        f"quarantined_at: {time.strftime('%Y-%m-%dT%H:%M:%S%z')}\n"
        f"pid: {os.getpid()}\n"
    )
    try:
        atomic_write(dest.with_name(dest.name + ".reason"),
                     note.encode("utf-8"), fs=fs, metrics=registry,
                     kind="quarantine_note")
    except OSError:  # pragma: no cover - the rename already preserved evidence
        pass
    return dest
