"""Cross-process advisory locking and single-flight builds.

:func:`advisory_lock` serializes writers of one persistent path across
processes.  The protocol:

- the lock file is ``<path>.lock``, created on demand and *never
  unlinked* on release in ``flock`` mode (unlinking a locked file is
  the classic three-process race: a waiter holding the old inode's lock
  while a third locker creates a fresh inode);
- where ``fcntl`` exists, ``flock(LOCK_EX)`` on that file is the lock —
  the kernel releases it when the holder dies, so a killed builder can
  never wedge the cache;
- holder metadata (pid, acquired-at, host) is written into the lock
  file for observability and for the fallback path;
- where ``fcntl`` is missing (non-POSIX), acquisition is
  ``O_CREAT|O_EXCL`` creation of the lock file itself.  Dead holders
  *do* leave the file behind there, so waiters detect staleness (holder
  pid dead, or metadata older than ``stale_after``) and **steal**: the
  stale file is unlinked, ``storage.lock_steals`` counts it, and
  acquisition retries.

:func:`build_once` is the single-flight helper on top: check, lock,
re-check, build.  Two cold processes racing to build the same sidecar
resolve to exactly one stage-1 build — the loser blocks on the lock,
then loads what the winner persisted (``storage.single_flight_reuse``).
"""

from __future__ import annotations

import json
import os
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, TypeVar

from repro.errors import LockTimeoutError
from repro.observe.metrics import MetricsRegistry
from repro.storage.fs import REAL_FS, RealFS, StrPath, as_path
from repro.storage.metrics import resolve

try:  # non-POSIX platforms fall back to O_EXCL lock files
    import fcntl
except ImportError:  # pragma: no cover - exercised via _force_fallback
    fcntl = None  # type: ignore[assignment]

#: Suffix of the lock file guarding a persistent path.
LOCK_SUFFIX = ".lock"

#: After this many seconds without the holder being provably alive, a
#: fallback-mode lock file may be stolen.
DEFAULT_STALE_AFTER = 60.0

T = TypeVar("T")


def lock_path_for(path: StrPath) -> Path:
    target = as_path(path)
    return target.with_name(target.name + LOCK_SUFFIX)


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, owned by another user
        return True
    except OSError:  # pragma: no cover - platform oddity: assume alive
        return True
    return True


def _read_holder(lock_file: Path) -> dict | None:
    """Best-effort parse of the holder metadata; ``None`` if unreadable."""
    try:
        raw = lock_file.read_bytes()
        meta = json.loads(raw.decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return meta if isinstance(meta, dict) else None


def _write_holder(fd: int) -> None:
    meta = json.dumps(
        {"pid": os.getpid(), "acquired_at": time.time(), "host": socket.gethostname()},
        separators=(",", ":"),
    ).encode("utf-8")
    try:
        os.ftruncate(fd, 0)
        os.pwrite(fd, meta, 0)
    except OSError:  # pragma: no cover - metadata is advisory
        pass


def _holder_is_stale(lock_file: Path, stale_after: float) -> bool:
    """A lock file whose recorded holder is dead — or whose metadata is
    unreadable/ancient — may be stolen (fallback mode)."""
    meta = _read_holder(lock_file)
    if meta is None:
        # Unreadable metadata: fall back to the file's age.
        try:
            return time.time() - lock_file.stat().st_mtime > stale_after
        except OSError:
            return False  # vanished: the holder released it
    pid = meta.get("pid")
    if isinstance(pid, int) and not _pid_alive(pid):
        return True
    acquired = meta.get("acquired_at")
    if isinstance(acquired, (int, float)):
        return time.time() - acquired > stale_after
    return False


@dataclass
class LockHandle:
    """What the ``advisory_lock`` context manager yields."""

    path: Path
    waited: bool = False
    stole: bool = False


@contextmanager
def advisory_lock(
    path: StrPath,
    *,
    timeout: float = 30.0,
    poll_interval: float = 0.05,
    stale_after: float = DEFAULT_STALE_AFTER,
    fs: RealFS = REAL_FS,
    metrics: MetricsRegistry | None = None,
    _force_fallback: bool = False,
) -> Iterator[LockHandle]:
    """Hold the cross-process advisory lock for ``path``.

    Blocks up to ``timeout`` seconds (polling), stealing provably-stale
    locks on the fallback path; raises
    :class:`~repro.errors.LockTimeoutError` when the deadline passes
    with the lock still held.  Counters: ``storage.lock_waits`` once
    per acquisition that had to wait, ``storage.lock_steals`` per stale
    lock broken, ``storage.lock_timeouts`` per give-up.
    """
    registry = resolve(metrics)
    lock_file = lock_path_for(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    use_flock = fcntl is not None and not _force_fallback
    deadline = time.monotonic() + timeout
    handle = LockHandle(path=lock_file)
    fd = -1

    while True:
        if use_flock:
            if fd < 0:
                fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
                fs.track_fd(fd)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                pass  # held elsewhere
        else:
            try:
                fd = os.open(lock_file, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                fs.track_fd(fd)
                break
            except FileExistsError:
                if _holder_is_stale(lock_file, stale_after):
                    try:
                        fs.unlink(lock_file)
                    except OSError:
                        pass  # raced another sweeper
                    registry.counter("storage.lock_steals").add(1)
                    handle.stole = True
                    continue
        if not handle.waited:
            handle.waited = True
            registry.counter("storage.lock_waits").add(1)
        if time.monotonic() >= deadline:
            if fd >= 0:
                fs.untrack_fd(fd)
                os.close(fd)
            registry.counter("storage.lock_timeouts").add(1)
            raise LockTimeoutError(
                f"could not acquire {lock_file} within {timeout:.1f}s "
                f"(holder: {_read_holder(lock_file)})"
            )
        time.sleep(poll_interval)

    _write_holder(fd)
    try:
        yield handle
    finally:
        if not fs.crashed:
            # A real (or simulated) kill skips all of this: flock dies
            # with the fd; a fallback lock file goes stale and is stolen.
            if not use_flock:
                try:
                    fs.unlink(lock_file)
                except OSError:
                    pass
            fs.untrack_fd(fd)
            try:
                os.close(fd)
            except OSError:
                pass


@dataclass
class BuildOnceResult:
    """Outcome of a :func:`build_once` call."""

    value: object
    built: bool
    waited: bool = False


def build_once(
    path: StrPath,
    load: Callable[[], T | None],
    build: Callable[[], T],
    *,
    lock_timeout: float = 30.0,
    fs: RealFS = REAL_FS,
    metrics: MetricsRegistry | None = None,
    _force_fallback: bool = False,
) -> BuildOnceResult:
    """Single-flight load-or-build of the artifact at ``path``.

    ``load`` returns the artifact or ``None`` (missing/invalid — the
    caller owns quarantine and telemetry for the invalid case);
    ``build`` constructs *and persists* it.  Concurrent callers on a
    cold cache serialize on :func:`advisory_lock`; all but the winner
    re-run ``load`` under the lock and reuse the winner's artifact.  If
    the lock cannot be had within ``lock_timeout`` the caller builds
    without persisting coordination — serving degraded beats deadlock.
    """
    registry = resolve(metrics)
    value = load()
    if value is not None:
        return BuildOnceResult(value, built=False)
    try:
        with advisory_lock(
            path, timeout=lock_timeout, fs=fs, metrics=registry,
            _force_fallback=_force_fallback,
        ) as lock:
            value = load()  # the winner may have built while we waited
            if value is not None:
                registry.counter("storage.single_flight_reuse").add(1)
                return BuildOnceResult(value, built=False, waited=lock.waited)
            registry.counter("storage.rebuilds").add(1)
            return BuildOnceResult(build(), built=True, waited=lock.waited)
    except LockTimeoutError:
        registry.counter("storage.rebuilds").add(1)
        return BuildOnceResult(build(), built=True, waited=True)
