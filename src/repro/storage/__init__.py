"""``repro.storage``: the durable-write substrate.

Every byte of persistent state this project writes — checkpoint
generations (:mod:`repro.checkpoint.store`), structural-index sidecars
(:mod:`repro.engine.sidecar`), materialized datasets
(:mod:`repro.data.writer`) — goes through one hardened path:

- :func:`atomic_write` — tmp-in-dir + fsync + rename + parent-dir
  fsync, with guaranteed tmp cleanup on failure (and
  :func:`sweep_stale_tmp` for the orphans a kill leaves behind);
- :func:`quarantine` — corrupt files are renamed ``*.corrupt`` with a
  reason note instead of silently overwritten;
- :func:`advisory_lock` / :func:`build_once` — cross-process writer
  serialization with stale-lock steal, and the single-flight
  load-or-build pattern on top;
- :class:`FaultFS` — the disk-fault-injection shim that can fail or
  kill a writer at every syscall boundary, which is how
  ``benchmarks/disk_chaos.py`` *proves* the crash-consistency claims
  instead of asserting them;
- :func:`storage_metrics` — the process-global ``storage.*`` counters
  (saves, quarantines by reason, lock waits/steals, rebuilds) merged
  into CLI ``--metrics`` and serve ``/metrics``.

Direct ``open(path, "wb")`` + ``os.replace`` hand-rolls outside this
package are rejected by staticcheck rule RS011.
"""

from repro.storage.atomic import (
    CORRUPT_SUFFIX,
    DEFAULT_TMP_MAX_AGE,
    atomic_write,
    quarantine,
    sweep_stale_tmp,
    tmp_path_for,
)
from repro.storage.faultfs import OPS, FaultFS, FaultPlan, SimulatedCrash, fault_plans, trace
from repro.storage.fs import REAL_FS, RealFS
from repro.storage.locking import (
    LOCK_SUFFIX,
    BuildOnceResult,
    LockHandle,
    advisory_lock,
    build_once,
    lock_path_for,
)
from repro.storage.metrics import reset_storage_metrics, storage_metrics

__all__ = [
    "CORRUPT_SUFFIX",
    "DEFAULT_TMP_MAX_AGE",
    "LOCK_SUFFIX",
    "OPS",
    "REAL_FS",
    "BuildOnceResult",
    "FaultFS",
    "FaultPlan",
    "LockHandle",
    "RealFS",
    "SimulatedCrash",
    "advisory_lock",
    "atomic_write",
    "build_once",
    "fault_plans",
    "lock_path_for",
    "quarantine",
    "reset_storage_metrics",
    "storage_metrics",
    "sweep_stale_tmp",
    "tmp_path_for",
    "trace",
]
