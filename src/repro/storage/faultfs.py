"""Disk-fault injection at every syscall boundary.

The same simulate-every-failure philosophy the parser applies to input
bytes (:mod:`repro.resilience.fuzz`) applied to disk I/O: a
:class:`FaultFS` wraps :class:`~repro.storage.fs.RealFS`, journals each
crash-relevant operation (``open``/``write``/``fsync``/``replace``/
``unlink``/``fsync_dir``), and can inject a fault at any 1-based step
of that journal:

``mode="fail"``
    Raise ``OSError`` (default ``ENOSPC``) at the boundary.  The
    writer's error handling runs — this is how the tmp-cleanup
    guarantee of :func:`repro.storage.atomic.atomic_write` is tested.

``mode="crash"``
    Simulate ``SIGKILL``: raise :class:`SimulatedCrash` (a
    ``BaseException``, so ordinary ``except OSError`` recovery code
    cannot observe it), close every descriptor the shim opened (the
    kernel would — this releases ``flock`` locks), and freeze the
    disk: every later operation through the shim raises
    :class:`SimulatedCrash` without touching the filesystem.  Cleanup
    code that would have run in ``finally`` blocks therefore has no
    effect on disk, exactly like a real kill.

``mode="exit"``
    Actually ``os._exit`` the process at the boundary — the strongest
    variant, used by the chaos harness's subprocess writers where no
    in-process simulation artifact is acceptable.

``when="before"`` injects instead of performing the operation;
``when="after"`` performs it first (the crash-after-rename-before-
dirsync window).  ``torn=True`` additionally performs a short write of
half the data before faulting a ``write`` step — the torn-page case.

Run once with no ``step`` to trace a writer (``fs.ops`` lists every
boundary), then re-run the writer once per ``(step, mode, when)``
combination; :func:`fault_plans` enumerates the standard sweep.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator

from repro.storage.fs import RealFS, StrPath

#: Journaled operation names, in the vocabulary `fault_plans` speaks.
OPS = ("open", "write", "fsync", "replace", "unlink", "fsync_dir")


class SimulatedCrash(BaseException):
    """The simulated process was killed at a syscall boundary.

    Deliberately a ``BaseException``: recovery code written for real
    failures (``except OSError``) must not be able to intercept a kill,
    and ``finally`` cleanup that runs after it finds the disk frozen.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One injection: fault at journal step ``step`` (1-based)."""

    step: int
    mode: str = "fail"  # "fail" | "crash" | "exit"
    when: str = "before"  # "before" | "after"
    torn: bool = False
    errno_code: int = errno.ENOSPC

    def describe(self, op: str = "?") -> str:
        shape = f"{self.mode}-{self.when}"
        if self.torn:
            shape += "-torn"
        return f"step {self.step} ({op}): {shape}"


class FaultFS(RealFS):
    """A :class:`RealFS` that performs real syscalls in a sandbox
    directory but can fail or kill the writer at any journaled step."""

    def __init__(self, plan: FaultPlan | None = None, exit_code: int = 137) -> None:
        self.plan = plan
        self.exit_code = exit_code
        #: ``(op, target)`` journal of every boundary crossed.
        self.ops: list[tuple[str, str]] = []
        self.crashed = False
        self._handles: list[BinaryIO] = []
        self._tracked_fds: list[int] = []

    # -- the gate -------------------------------------------------------

    def _gate(
        self,
        op: str,
        target: StrPath,
        perform: Callable[[], object],
        torn_perform: Callable[[], None] | None = None,
    ) -> object:
        if self.crashed:
            raise SimulatedCrash(f"fs operation {op} after simulated kill")
        self.ops.append((op, str(target)))
        plan = self.plan
        hit = plan is not None and len(self.ops) == plan.step
        if hit and plan.when == "before":
            if plan.torn and torn_perform is not None:
                torn_perform()
            self._fault(op)
        result = perform()
        if hit and plan.when == "after":
            self._fault(op)
        return result

    def _fault(self, op: str) -> None:
        plan = self.plan
        assert plan is not None
        if plan.mode == "fail":
            raise OSError(plan.errno_code, os.strerror(plan.errno_code), op)
        if plan.mode == "exit":
            os._exit(self.exit_code)
        # mode == "crash": kernel-side cleanup (close fds, which releases
        # flock locks), then freeze the disk.
        self.crashed = True
        for handle in self._handles:
            try:
                os.close(handle.fileno())
            except OSError:
                pass
        self._handles.clear()
        for fd in self._tracked_fds:
            try:
                os.close(fd)
            except OSError:
                pass
        self._tracked_fds.clear()
        raise SimulatedCrash(f"simulated kill at step {len(self.ops)} ({op})")

    # -- journaled boundary --------------------------------------------

    def open(self, path: StrPath) -> BinaryIO:
        def perform() -> BinaryIO:
            handle = open(path, "wb", buffering=0)
            self._handles.append(handle)
            return handle

        return self._gate("open", path, perform)  # type: ignore[return-value]

    def write(self, handle: BinaryIO, data: bytes) -> None:
        self._gate(
            "write",
            getattr(handle, "name", "<handle>"),
            lambda: handle.write(data),
            torn_perform=lambda: handle.write(data[: max(1, len(data) // 2)]),
        )

    def fsync(self, handle: BinaryIO) -> None:
        self._gate("fsync", getattr(handle, "name", "<handle>"),
                   lambda: os.fsync(handle.fileno()))

    def replace(self, src: StrPath, dst: StrPath) -> None:
        self._gate("replace", dst, lambda: os.replace(src, dst))

    def unlink(self, path: StrPath) -> None:
        self._gate("unlink", path, lambda: os.unlink(path))

    def fsync_dir(self, path: StrPath) -> None:
        self._gate("fsync_dir", path, lambda: RealFS.fsync_dir(self, path))

    # -- unjournaled ----------------------------------------------------

    def close(self, handle: BinaryIO) -> None:
        if handle in self._handles:
            self._handles.remove(handle)
        if self.crashed:
            return
        try:
            handle.close()
        except OSError:
            pass

    def track_fd(self, fd: int) -> None:
        self._tracked_fds.append(fd)

    def untrack_fd(self, fd: int) -> None:
        if fd in self._tracked_fds:
            self._tracked_fds.remove(fd)


def trace(writer: Callable[[FaultFS], object]) -> FaultFS:
    """Run ``writer`` against a fault-free shim; returns it with the
    journal populated (``fs.ops``)."""
    fs = FaultFS()
    writer(fs)
    return fs


def fault_plans(ops: list[tuple[str, str]], torn: bool = True) -> Iterator[FaultPlan]:
    """The standard sweep over a traced journal: for every step, an
    ``OSError`` before the op, a kill before it, and a kill right after
    it; write steps additionally get torn-write variants."""
    for step, (op, _target) in enumerate(ops, start=1):
        yield FaultPlan(step, mode="fail", when="before")
        yield FaultPlan(step, mode="crash", when="before")
        yield FaultPlan(step, mode="crash", when="after")
        if torn and op == "write":
            yield FaultPlan(step, mode="fail", when="before", torn=True)
            yield FaultPlan(step, mode="crash", when="before", torn=True)
