"""The process-wide ``storage.*`` counter registry.

Storage operations happen below any one engine run — a sidecar
quarantine during registry warm-up, a lock steal during a CLI cold
start — so their counters accumulate in one process-global
:class:`~repro.observe.metrics.MetricsRegistry` that the CLI merges
into its ``--metrics`` document and the service merges into
``/metrics`` at render time.  Helpers accept an explicit ``metrics=``
registry for isolation (tests, per-run accounting); ``None`` routes to
the global one.

Counters::

    storage.saves{kind}            atomic_write completions
    storage.save_errors{kind}      atomic_write failures (tmp cleaned)
    storage.tmp_swept              stale .tmp* files removed by sweeps
    storage.quarantines{reason}    corrupt files renamed *.corrupt
    storage.sidecar_rejects{reason} load_or_build validation fallbacks
    storage.lock_waits             acquisitions that had to wait
    storage.lock_steals            stale locks broken (dead holder)
    storage.lock_timeouts          acquisitions that gave up
    storage.rebuilds               build_once invocations that built
    storage.single_flight_reuse    waiters that reused another's build
"""

from __future__ import annotations

from repro.observe.metrics import MetricsRegistry

_REGISTRY = MetricsRegistry()


def storage_metrics() -> MetricsRegistry:
    """The process-global ``storage.*`` registry (merge it into any
    output document alongside engine metrics)."""
    return _REGISTRY


def reset_storage_metrics() -> MetricsRegistry:
    """Swap in a fresh global registry (test isolation); returns it."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY


def resolve(metrics: MetricsRegistry | None) -> MetricsRegistry:
    """The registry a storage helper should record into."""
    return metrics if metrics is not None else _REGISTRY
