"""JSONSki reproduction: streaming JSON with bit-parallel fast-forwarding.

Reproduces *JSONSki: Streaming Semi-structured Data with Bit-Parallel
Fast-Forwarding* (Jiang & Zhao, ASPLOS 2022) as a pure-Python library:
the JSONSki engine, the four baseline processors the paper compares
against, the six evaluation dataset generators, and the benchmark harness
that regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> import repro
>>> engine = repro.JsonSki("$.place.name")
>>> engine.run(b'{"user": {"id": 6253282}, "place": {"name": "Manhattan"}}').values()
['Manhattan']

The uniform engine registry lets the same code drive any method:

>>> repro.compile("$.place.name", engine="jpstream").run(b'{"place": {"name": "x"}}').values()
['x']
>>> repro.ENGINES["jpstream"]("$.place.name").run(b'{"place": {"name": "x"}}').values()
['x']

The two-stage API separates stage 1 (structural indexing) from stage 2
(streaming) so the index can be reused across queries:

>>> prepared = repro.compile("$.place.name")
>>> indexed = repro.index(b'{"place": {"name": "x"}}')
>>> prepared.run(indexed).values()
['x']
"""

from repro.baselines import JPStream, PisonLike, RapidJsonLike, SimdJsonLike, StdlibJson
from repro.checkpoint import (
    CheckpointInfo,
    CheckpointStore,
    EngineState,
    JsonlEmitter,
    KillResumeReport,
    SuspendableRun,
    kill_resume_differential,
)
from repro.engine import FastForwardStats, JsonSki, JsonSkiMulti, Match, MatchList, RecursiveDescentStreamer, iter_events
from repro.engine.prepared import IndexedBuffer, PreparedQuery, index
from repro.errors import (
    CheckpointError,
    DeadlineExceededError,
    DepthLimitError,
    IndexSidecarError,
    JsonPathSyntaxError,
    JsonSyntaxError,
    MatchTypeError,
    RecordTooLargeError,
    ReproError,
    ResourceLimitError,
    StreamExhaustedError,
    UnsupportedQueryError,
)
from repro.resilience import (
    Deadline,
    FuzzReport,
    Limits,
    RecordFailure,
    RecoveryResult,
    differential_fuzz,
    run_with_recovery,
)
from repro.parallel import PoolResult, run_records_pool_resilient
from repro.jsonpath import Path, parse_path
from repro.observe import (
    Counter,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NOOP_TRACER,
    NoopTracer,
    PrometheusTextSink,
    Span,
    Tracer,
    metrics_document,
    render_prometheus,
)
from repro.query import MatchStatus, QueryAutomaton, compile_query, explain
from repro.reference import evaluate, evaluate_bytes
from repro.registry import ENGINES, EngineInfo, EngineRegistry, compile
from repro.analysis import AnalysisReport, analyze
from repro.crosscheck import CrossCheckFailure, cross_check
from repro.extract import Extractor
from repro.stream import MappedFile, RecordStream, StreamBuffer
from repro.validation import is_valid_json, validate_json

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointStore",
    "Counter",
    "Deadline",
    "DeadlineExceededError",
    "DepthLimitError",
    "EngineState",
    "FuzzReport",
    "JsonlEmitter",
    "KillResumeReport",
    "SuspendableRun",
    "kill_resume_differential",
    "Limits",
    "PoolResult",
    "RecordFailure",
    "RecoveryResult",
    "ResourceLimitError",
    "differential_fuzz",
    "run_records_pool_resilient",
    "run_with_recovery",
    "ENGINES",
    "EngineInfo",
    "EngineRegistry",
    "Extractor",
    "FastForwardStats",
    "Histogram",
    "IndexedBuffer",
    "JPStream",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "PrometheusTextSink",
    "Span",
    "Tracer",
    "JsonPathSyntaxError",
    "JsonSki",
    "JsonSkiMulti",
    "JsonSyntaxError",
    "IndexSidecarError",
    "MappedFile",
    "Match",
    "MatchList",
    "MatchStatus",
    "MatchTypeError",
    "Path",
    "PisonLike",
    "PreparedQuery",
    "QueryAutomaton",
    "RapidJsonLike",
    "RecordStream",
    "RecordTooLargeError",
    "RecursiveDescentStreamer",
    "ReproError",
    "SimdJsonLike",
    "StdlibJson",
    "StreamBuffer",
    "StreamExhaustedError",
    "UnsupportedQueryError",
    "analyze",
    "compile",
    "cross_check",
    "CrossCheckFailure",
    "compile_query",
    "explain",
    "index",
    "is_valid_json",
    "iter_events",
    "metrics_document",
    "render_prometheus",
    "validate_json",
    "evaluate",
    "evaluate_bytes",
    "parse_path",
]
