"""Crash-consistent checkpointing and resumable streaming runs.

Three layers, smallest to largest:

- :mod:`repro.checkpoint.store` — :class:`CheckpointStore`: versioned,
  CRC32-checksummed checkpoint generations written atomically (tmp +
  fsync + rename); a corrupt newest generation falls back to the newest
  valid one.
- :mod:`repro.checkpoint.suspend` — :class:`SuspendableRun` /
  :class:`EngineState`: the JSONSki evaluation loop with an explicit,
  serializable stack, so a single huge record can suspend at a member
  boundary and resume in a fresh process.
- :mod:`repro.checkpoint.runs` — record-granularity checkpointing for
  :func:`repro.resilience.run_with_recovery` and
  :func:`repro.parallel.run_records_pool_resilient` (durable cursor,
  exactly-once emission via :class:`JsonlEmitter`).

:mod:`repro.checkpoint.validate` checks the whole stack behaviourally:
interrupt anywhere, resume, assert byte-identical output.
"""

from repro.checkpoint.runs import (
    POOL_KIND,
    RECOVERY_KIND,
    SUSPEND_KIND,
    CheckpointInfo,
    JsonlEmitter,
    checkpointed_pool,
    checkpointed_recovery,
    stream_fingerprint,
)
from repro.checkpoint.store import (
    DEFAULT_KEEP,
    FORMAT_VERSION,
    MAGIC,
    CheckpointRecord,
    CheckpointStore,
    as_store,
    fingerprint,
)
from repro.checkpoint.suspend import EngineState, SuspendableRun
from repro.checkpoint.validate import KillResumeReport, kill_resume_differential

__all__ = [
    "CheckpointInfo",
    "CheckpointRecord",
    "CheckpointStore",
    "DEFAULT_KEEP",
    "EngineState",
    "FORMAT_VERSION",
    "JsonlEmitter",
    "KillResumeReport",
    "MAGIC",
    "POOL_KIND",
    "RECOVERY_KIND",
    "SUSPEND_KIND",
    "SuspendableRun",
    "as_store",
    "checkpointed_pool",
    "checkpointed_recovery",
    "fingerprint",
    "kill_resume_differential",
    "stream_fingerprint",
]
