"""Record-granularity checkpointing for streaming runs.

The record runners (:func:`repro.resilience.run_with_recovery`, serial,
and :func:`repro.parallel.run_records_pool_resilient`, multi-process)
gain a durable cursor here: every ``checkpoint_every`` records the run
commits

- the **cursor** (index of the next unprocessed record),
- the **emitted-match count** and, when an emitter is attached, the
  **output offset** the emitted bytes end at,
- the **failure report** accumulated so far, and
- a **metrics snapshot** (:meth:`MetricsRegistry.as_dict`),

to a :class:`~repro.checkpoint.store.CheckpointStore`.  A resumed run
validates the checkpoint against the stream (record count, payload
length, sampled CRC32) and the query, skips the completed prefix, and —
this is the exactly-once part — **defers emission to commit points**:
match values are buffered between checkpoints and written to the emitter
immediately *before* the checkpoint that covers them is saved, so the
persisted ``output_offset`` always equals the bytes actually flushed.
On resume a seekable emitter is truncated back to that offset, erasing
any partially-emitted tail from the crash window; the concatenation of
output across any number of kill/resume cycles is byte-identical to an
uninterrupted run's output.

What is *not* persisted: per-record match values (the output stream or
the caller's own sink owns them — persisting them would make every
checkpoint O(matches so far)), engine-internal caches, and wall-clock
history.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.checkpoint.store import CheckpointStore, as_store, fingerprint
from repro.engine.output import Match
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
)

#: ``kind`` tags distinguishing checkpoint flavours; resuming a run with
#: a checkpoint of a different kind is an error, not a silent restart.
RECOVERY_KIND = "records/recovery"
POOL_KIND = "records/pool"
SUSPEND_KIND = "record/suspend"


@dataclass(frozen=True)
class CheckpointInfo:
    """How checkpointing went for one run (``result.checkpoint``)."""

    resumed_at: int  #: cursor restored from a checkpoint (0 = fresh start)
    checkpoints_written: int
    interrupted: bool  #: the ``stop`` callable ended the run early
    completed: bool  #: every record was processed (or the run aborted)
    emitted: int = 0  #: total matches emitted, *including* pre-resume work


class JsonlEmitter:
    """Match-value emitter writing one JSON value per line.

    ``handle`` must be a binary file object; when it is seekable the
    emitter supports :meth:`truncate_to` and resumed runs are
    exactly-once.  A non-seekable sink (a pipe, stdout) still works, but
    a crash in the narrow window between emission and the covering
    checkpoint re-emits that window's matches on resume (at-least-once).
    """

    def __init__(self, handle) -> None:
        self.handle = handle
        try:
            self._seekable = handle.seekable()
        except (AttributeError, OSError):
            self._seekable = False

    def emit(self, index: int, values: list[Any]) -> None:
        """Write one line per value.

        A lazy :class:`~repro.engine.output.Match` view is spliced out
        verbatim — its slice is already one valid JSON value, so the
        line needs no parse and no re-encode (the emission-bound win of
        on-demand materialization).  Anything else (a pool worker's
        already-parsed value, a plain Python object) is serialized
        compactly as before.
        """
        write = self.handle.write
        for value in values:
            if isinstance(value, Match):
                write(value.text)
            else:
                write(json.dumps(value, separators=(",", ":")).encode("utf-8"))
            write(b"\n")

    def flush(self) -> None:
        self.handle.flush()

    def tell(self) -> int | None:
        return self.handle.tell() if self._seekable else None

    def truncate_to(self, offset: int) -> None:
        if not self._seekable:
            raise CheckpointError("cannot truncate a non-seekable output")
        self.handle.seek(offset)
        self.handle.truncate(offset)


def stream_fingerprint(stream) -> dict:
    """Cheap identity of a :class:`~repro.stream.records.RecordStream`."""
    return {
        "records": len(stream),
        "payload_len": stream.size,
        "crc": fingerprint(stream.payload),
    }


class _Window:
    """A contiguous slice of a RecordStream (what the pool runner sees)."""

    def __init__(self, stream, start: int, stop: int) -> None:
        self.stream = stream
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def record(self, i: int) -> bytes:
        return self.stream.record(self.start + i)


class _Checkpointer:
    """Shared restore/commit machinery for both record runners."""

    def __init__(
        self,
        kind: str,
        store: CheckpointStore,
        stream,
        query: str | None,
        emitter,
        metrics,
        resume: bool,
    ) -> None:
        self.kind = kind
        self.store = store
        self.stream_id = stream_fingerprint(stream)
        self.query = query
        self.emitter = emitter
        self.metrics = metrics
        self.cursor = 0
        self.emitted = 0
        self.failures: list = []
        self.extra: dict = {}
        self.resumed_at = 0
        self.written = 0
        self.done = False
        self.aborted = False
        #: (index, values) pairs awaiting the next commit.
        self._pending: list[tuple[int, list]] = []
        if resume:
            self._restore()
        else:
            store.clear()

    def _restore(self) -> None:
        from repro.resilience.recovery import RecordFailure

        record = self.store.load_latest()
        if record is None:
            return  # nothing to resume from: fresh start
        payload = record.payload
        if payload.get("kind") != self.kind:
            raise CheckpointError(
                f"checkpoint {record.path} is a {payload.get('kind')!r} "
                f"checkpoint, not {self.kind!r}"
            )
        if payload.get("stream") != self.stream_id:
            raise CheckpointError(
                f"checkpoint {record.path} was written for a different "
                f"stream ({payload.get('stream')} vs {self.stream_id})"
            )
        if self.query is not None and payload.get("query") not in (None, self.query):
            raise CheckpointError(
                f"checkpoint {record.path} was written for query "
                f"{payload.get('query')!r}, not {self.query!r}"
            )
        self.cursor = self.resumed_at = int(payload["cursor"])
        self.emitted = int(payload.get("emitted", 0))
        self.done = bool(payload.get("done", False))
        self.aborted = bool(payload.get("aborted", False))
        self.extra = dict(payload.get("extra", {}))
        self.failures = [
            RecordFailure(
                index=f["index"], kind=f["kind"], error=f["error"],
                message=f["message"], position=f.get("position"),
            )
            for f in payload.get("failures", ())
        ]
        if self.metrics is not None and payload.get("metrics") is not None:
            self.metrics.merge_dict(payload["metrics"])
        offset = payload.get("output_offset")
        if self.emitter is not None and offset is not None:
            truncate = getattr(self.emitter, "truncate_to", None)
            if truncate is not None:
                truncate(offset)
            # No truncate support: the sink keeps whatever the crashed
            # process wrote past the checkpoint (at-least-once).

    def stage(self, index: int, values: list | None) -> None:
        """Queue one record's match values for the next commit."""
        if values:
            self._pending.append((index, values))
            self.emitted += len(values)

    def commit(self) -> None:
        """Emit everything staged, then persist a covering checkpoint."""
        emitter = self.emitter
        offset = None
        if emitter is not None:
            for index, values in self._pending:
                emitter.emit(index, values)
            emitter.flush()
            tell = getattr(emitter, "tell", None)
            offset = tell() if tell is not None else None
        self._pending.clear()
        payload = {
            "kind": self.kind,
            "query": self.query,
            "stream": self.stream_id,
            "cursor": self.cursor,
            "emitted": self.emitted,
            "output_offset": offset,
            "failures": [
                {
                    "index": f.index, "kind": f.kind, "error": f.error,
                    "message": f.message, "position": f.position,
                }
                for f in self.failures
            ],
            "metrics": self.metrics.as_dict() if self.metrics is not None else None,
            "extra": self.extra,
            "aborted": self.aborted,
            "done": self.done,
        }
        self.store.save(payload)
        self.written += 1

    def info(self, interrupted: bool) -> CheckpointInfo:
        return CheckpointInfo(
            resumed_at=self.resumed_at,
            checkpoints_written=self.written,
            interrupted=interrupted,
            completed=self.done,
            emitted=self.emitted,
        )


def checkpointed_recovery(
    engine,
    stream,
    *,
    checkpoint: CheckpointStore | str,
    checkpoint_every: int = 1000,
    resume: bool = False,
    emitter=None,
    stop: Callable[[int], bool] | None = None,
    max_failures: int | None = None,
    metrics=None,
    query: str | None = None,
    materialize: bool = True,
):
    """:func:`~repro.resilience.run_with_recovery` with a durable cursor.

    Identical per-record semantics (skip-and-report on
    :class:`~repro.errors.ReproError`, abort on deadline or
    ``max_failures``), plus a checkpoint every ``checkpoint_every``
    records and at every exit path.  ``stop`` is consulted at each record
    boundary with the next cursor; returning truthy commits a final
    checkpoint and returns early (``result.checkpoint.interrupted``).

    Returns a :class:`~repro.resilience.recovery.RecoveryResult` whose
    ``values`` cover only records processed *this session* — entries for
    records completed before a resume are ``None`` (their output already
    lives in the emitter's sink); ``result.checkpoint.resumed_at`` marks
    the boundary.

    ``materialize=False`` keeps the run zero-parse end to end: each
    ``values`` entry is the record's lazy
    :class:`~repro.engine.output.MatchList`, staged matches are byte
    ranges, and the emitter splices raw slices instead of re-encoding
    parsed values.  Exactly-once is unchanged — pending lazy matches are
    plain ranges over the input, so nothing parse-dependent sits in the
    crash window — but undecodable match slices are no longer diagnosed
    (nothing decodes them); leave the default when you need the
    ``UndecodableMatch`` failure class.
    """
    from repro.resilience.recovery import RecordFailure, RecoveryResult

    if checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be at least 1")
    if query is None:
        # Engines keep their parsed Path; record its canonical text so a
        # resume against a different query is rejected, not silently mixed.
        path = getattr(engine, "path", None)
        query = path.unparse() if hasattr(path, "unparse") else None
    ck = _Checkpointer(
        RECOVERY_KIND, as_store(checkpoint), stream, query, emitter, metrics, resume
    )
    n = len(stream)
    values: list[list | None] = [None] * n
    interrupted = False
    if not ck.done:
        since_commit = 0
        while ck.cursor < n:
            i = ck.cursor
            if stop is not None and stop(i):
                interrupted = True
                break
            skipped_counter = None
            try:
                matches = engine.run(stream.record(i))
                # The eager path decodes here (and can fail per record);
                # the lazy path carries views straight to the emitter.
                values[i] = matches.values() if materialize else matches
            except ReproError as exc:
                failure = RecordFailure.from_exception(i, exc)
                ck.failures.append(failure)
                skipped_counter = failure.error
                if isinstance(exc, DeadlineExceededError):
                    ck.aborted = True
                if max_failures is not None and len(ck.failures) >= max_failures:
                    ck.aborted = True
            except ValueError as exc:
                failure = RecordFailure(i, "error", "UndecodableMatch", str(exc))
                ck.failures.append(failure)
                skipped_counter = failure.error
                if max_failures is not None and len(ck.failures) >= max_failures:
                    ck.aborted = True
            if metrics is not None and skipped_counter is not None:
                metrics.counter("stream.records_skipped", error=skipped_counter).add(1)
            staged = values[i]
            if staged is not None and not materialize:
                staged = list(staged)
            ck.stage(i, staged)
            ck.cursor = i + 1
            since_commit += 1
            if ck.aborted:
                break
            if since_commit >= checkpoint_every:
                ck.commit()
                since_commit = 0
        if ck.cursor >= n or ck.aborted:
            ck.done = True
        if metrics is not None:
            metrics.counter("stream.records_ok").add(
                sum(1 for v in values if v is not None)
            )
        ck.commit()
    result = RecoveryResult(values=values, failures=list(ck.failures))
    result.checkpoint = ck.info(interrupted)
    return result


def checkpointed_pool(
    query: str,
    stream,
    *,
    checkpoint: CheckpointStore | str,
    checkpoint_every: int = 1000,
    resume: bool = False,
    emitter=None,
    stop: Callable[[int], bool] | None = None,
    n_workers: int = 2,
    batch_size: int = 64,
    max_retries: int = 2,
    timeout: float | None = None,
    backoff: float = 0.05,
    backoff_jitter: float = 1.0,
    backoff_rng=None,
    metrics=None,
    inject_faults: bool = False,
    limits=None,
):
    """:func:`~repro.parallel.run_records_pool_resilient` with a durable cursor.

    The stream is processed in segments of ``checkpoint_every`` records;
    each segment runs through the fault-tolerant pool, then its failures
    (re-indexed to absolute record numbers), match values, and pool
    counters are committed.  ``stop`` is consulted between segments —
    segment granularity is the pool's natural commit unit, since records
    within a segment complete out of order across workers.

    ``limits`` with an already-expired absolute deadline fails fast with
    :class:`~repro.errors.DeadlineExceededError` before any segment (and
    before restoring a checkpoint) — a resumed run must convert its
    remaining budget into a *fresh* deadline rather than inherit an
    expired one; see :meth:`repro.resilience.Limits.remaining`.
    """
    from repro.parallel.real_pool import (
        PoolResult,
        check_dispatch_deadline,
        run_records_pool_resilient,
    )
    from repro.resilience.recovery import RecordFailure

    if checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be at least 1")
    check_dispatch_deadline(limits)
    ck = _Checkpointer(
        POOL_KIND, as_store(checkpoint), stream, query, emitter, metrics, resume
    )
    n = len(stream)
    result = PoolResult(values=[None] * n)
    result.worker_crashes = int(ck.extra.get("worker_crashes", 0))
    result.batch_retries = int(ck.extra.get("batch_retries", 0))
    result.failures = list(ck.failures)
    interrupted = False
    if not ck.done:
        while ck.cursor < n:
            if stop is not None and stop(ck.cursor):
                interrupted = True
                break
            window = _Window(stream, ck.cursor, min(n, ck.cursor + checkpoint_every))
            segment = run_records_pool_resilient(
                query,
                window,
                n_workers=n_workers,
                batch_size=batch_size,
                max_retries=max_retries,
                timeout=timeout,
                backoff=backoff,
                backoff_jitter=backoff_jitter,
                backoff_rng=backoff_rng,
                metrics=metrics,
                inject_faults=inject_faults,
                limits=limits,
            )
            for offset, per_record in enumerate(segment.values):
                idx = window.start + offset
                result.values[idx] = per_record
                ck.stage(idx, per_record)
            for failure in segment.failures:
                ck.failures.append(replace(failure, index=failure.index + window.start))
            result.worker_crashes += segment.worker_crashes
            result.batch_retries += segment.batch_retries
            ck.cursor = window.stop
            ck.extra = {
                "worker_crashes": result.worker_crashes,
                "batch_retries": result.batch_retries,
            }
            ck.commit()
        if ck.cursor >= n:
            ck.done = True
            ck.commit()
    result.failures = list(ck.failures)
    result.checkpoint = ck.info(interrupted)
    return result
