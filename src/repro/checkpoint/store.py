"""Crash-consistent checkpoint persistence.

A checkpoint is only useful if it is *trustworthy after a crash*: a
worker can die mid-``write``, a disk can drop a tail of dirty pages, an
operator can copy half a file.  :class:`CheckpointStore` therefore never
updates a checkpoint in place.  Every :meth:`~CheckpointStore.save`
writes a **new generation**:

1. the payload (a JSON document) is serialized and its CRC32 computed;
2. a header + payload file is written to a temporary name *in the same
   directory*, flushed, and ``fsync``'d;
3. the temporary file is atomically ``os.replace``'d onto the
   generation name (crash before this point leaves the old generations
   untouched; crash after it leaves a fully-written new one);
4. the directory entry is fsync'd (best effort) and generations older
   than the newest ``keep`` are pruned.

Steps 2–4 are :func:`repro.storage.atomic_write` — the same durable-
write substrate the index sidecars use, with the same injectable
syscall shim, so ``benchmarks/disk_chaos.py`` can kill a saver at every
boundary and assert a reader only ever observes complete generations.

:meth:`~CheckpointStore.load_latest` walks generations newest-first and
returns the first one that validates — magic, format version, payload
length, and CRC32 all have to match.  A truncated or bit-rotted newest
generation is *skipped with a note* (see :attr:`CheckpointStore.skipped`)
and the previous generation is used instead: resuming from a slightly
older checkpoint re-does a little work; resuming from a corrupt one
silently produces wrong output.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CheckpointError, ConfigurationError
from repro.storage.atomic import atomic_write, sweep_stale_tmp
from repro.storage.fs import REAL_FS, RealFS

#: First line of every checkpoint file.
MAGIC = "repro-ckpt"

#: Bump when the header or payload layout changes incompatibly.
FORMAT_VERSION = 1

#: Generations retained by default (newest K survive pruning).
DEFAULT_KEEP = 3


@dataclass(frozen=True)
class CheckpointRecord:
    """One validated checkpoint: its generation number, file, payload."""

    generation: int
    path: Path
    payload: dict


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def fingerprint(data: bytes) -> int:
    """Cheap input identity: CRC32 over a bounded sample of ``data``.

    Resume must not re-read gigabytes just to prove the input is the same
    file, so the fingerprint covers the first and last 64 KiB plus the
    total length — enough to catch the realistic accidents (wrong file,
    regenerated input, appended records) in O(1).
    """
    head, tail = data[: 1 << 16], data[-(1 << 16) :]
    return _crc32(head + tail + str(len(data)).encode("ascii"))


class CheckpointStore:
    """Versioned, checksummed, atomically-written checkpoint generations.

    Parameters
    ----------
    path:
        Base path; generation ``g`` lives at ``<path>.g<g:06d>``.
    keep:
        Number of newest generations retained after each save.  More than
        one generation is the corruption fallback *and* the crash-window
        fallback (a save interrupted by SIGKILL leaves at most a stale
        ``.tmp`` file behind, never a damaged generation).

    Example
    -------
    >>> import tempfile, os
    >>> base = os.path.join(tempfile.mkdtemp(), "run.ckpt")
    >>> store = CheckpointStore(base)
    >>> _ = store.save({"cursor": 10})
    >>> store.load_latest().payload["cursor"]
    10
    """

    def __init__(
        self, path: str | Path, keep: int = DEFAULT_KEEP, fs: RealFS = REAL_FS
    ) -> None:
        if keep < 1:
            raise ConfigurationError("keep must be at least 1")
        self.base = Path(path)
        self.keep = keep
        #: Injectable syscall shim (``repro.storage``); the disk-chaos
        #: harness swaps in a :class:`~repro.storage.FaultFS` here.
        self.fs = fs
        #: ``(path, reason)`` pairs for generations skipped as invalid by
        #: the most recent :meth:`load_latest` call.
        self.skipped: list[tuple[Path, str]] = []

    # -- enumeration ----------------------------------------------------

    def generations(self) -> list[tuple[int, Path]]:
        """Existing generation files, oldest first (files only, unvalidated)."""
        prefix = self.base.name + ".g"
        parent = self.base.parent
        found: list[tuple[int, Path]] = []
        if not parent.is_dir():
            return found
        for entry in parent.iterdir():
            name = entry.name
            if not name.startswith(prefix) or ".tmp" in name:
                continue
            suffix = name[len(prefix) :]
            if suffix.isdigit():
                found.append((int(suffix), entry))
        found.sort()
        return found

    def _generation_path(self, generation: int) -> Path:
        return self.base.with_name(f"{self.base.name}.g{generation:06d}")

    # -- write ----------------------------------------------------------

    def save(self, payload: dict) -> Path:
        """Durably persist ``payload`` as a new generation; prune old ones."""
        existing = self.generations()
        generation = (existing[-1][0] + 1) if existing else 1
        target = self._generation_path(generation)
        target.parent.mkdir(parents=True, exist_ok=True)

        body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
        header = json.dumps(
            {
                "magic": MAGIC,
                "version": FORMAT_VERSION,
                "crc32": _crc32(body),
                "length": len(body),
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("ascii")

        atomic_write(target, header + b"\n" + body, fs=self.fs, kind="checkpoint")

        # After this save there are len(existing) + 1 generations; drop the
        # oldest ones beyond ``keep``.
        for _, old_path in existing[: max(0, len(existing) + 1 - self.keep)]:
            try:
                self.fs.unlink(old_path)
            except OSError:  # pragma: no cover - best effort
                pass
        return target

    # -- read -----------------------------------------------------------

    def _read_validated(self, path: Path) -> dict:
        """Parse and verify one generation file; raise on any defect."""
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
        newline = raw.find(b"\n")
        if newline < 0:
            raise CheckpointError(f"checkpoint {path} is truncated (no header line)")
        try:
            header = json.loads(raw[:newline])
        except ValueError:
            raise CheckpointError(f"checkpoint {path} has an unparsable header") from None
        if not isinstance(header, dict) or header.get("magic") != MAGIC:
            raise CheckpointError(f"checkpoint {path} has wrong magic")
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version {header.get('version')!r}, "
                f"expected {FORMAT_VERSION}"
            )
        body = raw[newline + 1 :]
        if len(body) != header.get("length"):
            raise CheckpointError(
                f"checkpoint {path} is truncated "
                f"({len(body)} payload bytes, header says {header.get('length')})"
            )
        if _crc32(body) != header.get("crc32"):
            raise CheckpointError(f"checkpoint {path} failed its CRC32 check")
        try:
            payload = json.loads(body)
        except ValueError:
            raise CheckpointError(f"checkpoint {path} payload is not valid JSON") from None
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path} payload is not an object")
        return payload

    def load_latest(self) -> CheckpointRecord | None:
        """Newest *valid* checkpoint, or ``None`` when no generation validates.

        Invalid generations encountered on the way are recorded in
        :attr:`skipped` so callers can report the fallback instead of
        resuming silently from older state.  Stale ``.tmp<pid>`` files
        orphaned by killed savers are swept on the way in.
        """
        self.skipped = []
        sweep_stale_tmp(self.base.parent, fs=self.fs)
        for generation, path in reversed(self.generations()):
            try:
                payload = self._read_validated(path)
            except CheckpointError as exc:
                self.skipped.append((path, str(exc)))
                continue
            return CheckpointRecord(generation=generation, path=path, payload=payload)
        return None

    def clear(self) -> None:
        """Delete every generation (a completed run's cleanup)."""
        for _, path in self.generations():
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best effort
                pass


def as_store(checkpoint: "CheckpointStore | str | Path") -> CheckpointStore:
    """Coerce a path-or-store argument into a :class:`CheckpointStore`."""
    if isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)
