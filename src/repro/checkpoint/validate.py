"""Kill-and-resume differential validation.

The checkpoint subsystem's contract is behavioural: *interrupt a run
anywhere, resume it, and the output is byte-identical to never having
been interrupted*.  This module checks that contract directly —
:func:`kill_resume_differential` runs the same query three times

1. **reference** — uninterrupted, emitting to an in-memory sink;
2. **interrupted** — checkpointed, stopped at a chosen record cursor
   (simulating the kill; the SIGKILL-mid-process variant lives in the
   subprocess tests, which share this comparison logic);
3. **resumed** — from the newest checkpoint to completion;

and compares the interrupted+resumed output stream, failure report, and
emitted-match count against the reference.  It is wired into the tier-1
fuzz smoke test and ``benchmarks/fuzz_soak.py --kill-resume``.

The harness is deliberately race-proof: if ``interrupt_at`` lands past
the end of the stream the "interrupted" run simply completes and the
resume is a no-op — equality must *still* hold, so a fuzzer can pick
interrupt points blindly.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

from repro.checkpoint.runs import JsonlEmitter


@dataclass(frozen=True)
class KillResumeReport:
    """Outcome of one interrupt/resume equivalence check."""

    ok: bool
    interrupt_at: int
    interrupted: bool  #: whether the stop actually landed mid-run
    resumed_at: int  #: cursor the resumed run restored (== interrupt_at when landed)
    n_records: int
    expected_matches: int
    got_matches: int
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return (
            f"kill-resume {status}: interrupt@{self.interrupt_at}/"
            f"{self.n_records} resumed@{self.resumed_at} "
            f"matches {self.got_matches}/{self.expected_matches}"
            + (f" — {self.detail}" if self.detail else "")
        )


def _failure_key(failure) -> tuple:
    return (failure.index, failure.kind, failure.error)


def kill_resume_differential(
    query: str,
    stream,
    *,
    interrupt_at: int,
    workdir: str | Path,
    runner: str = "recovery",
    checkpoint_every: int = 2,
    n_workers: int = 2,
    engine_factory=None,
) -> KillResumeReport:
    """Check interrupt-at-``interrupt_at``-then-resume output equality.

    ``runner`` selects the checkpointed execution path: ``"recovery"``
    (serial :func:`~repro.resilience.run_with_recovery`) or ``"pool"``
    (:func:`~repro.parallel.run_records_pool_resilient` with
    ``n_workers``).  ``workdir`` holds the checkpoint generations and the
    output file; reusing a directory across calls is safe (each call
    starts fresh).  ``engine_factory`` overrides the engine constructor
    for the recovery runner (default: ``JsonSki(query)``).
    """
    from repro.engine.jsonski import JsonSki
    from repro.parallel.real_pool import run_records_pool_resilient
    from repro.resilience.recovery import run_with_recovery

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    ck_base = workdir / "kill-resume.ckpt"
    out_path = workdir / "kill-resume.out.jsonl"
    make_engine = engine_factory or (lambda: JsonSki(query))

    # 1. Reference: uninterrupted run into an in-memory emitter.  The
    # checkpointed path is used here too (with an unreachable stop) so the
    # comparison isolates the interruption, not the emission formatting.
    ref_sink = io.BytesIO()
    ref_store = ck_base.with_name(ck_base.name + ".ref")
    if runner == "pool":
        reference = run_records_pool_resilient(
            query, stream, n_workers=n_workers,
            checkpoint=ref_store, checkpoint_every=checkpoint_every,
            emitter=JsonlEmitter(ref_sink),
        )
    else:
        reference = run_with_recovery(
            make_engine(), stream,
            checkpoint=ref_store, checkpoint_every=checkpoint_every,
            emitter=JsonlEmitter(ref_sink),
        )
    expected_bytes = ref_sink.getvalue()
    expected_failures = sorted(map(_failure_key, reference.failures))

    # 2. Interrupted run: stop at the chosen cursor.
    def stopper(cursor: int) -> bool:
        return cursor >= interrupt_at

    with open(out_path, "w+b") as handle:
        if runner == "pool":
            first = run_records_pool_resilient(
                query, stream, n_workers=n_workers,
                checkpoint=ck_base, checkpoint_every=checkpoint_every,
                emitter=JsonlEmitter(handle), stop=stopper,
            )
        else:
            first = run_with_recovery(
                make_engine(), stream,
                checkpoint=ck_base, checkpoint_every=checkpoint_every,
                emitter=JsonlEmitter(handle), stop=stopper,
            )

    # 3. Resume to completion in a "fresh process" (fresh engine, fresh
    # store object; only the files carry state across).
    with open(out_path, "r+b") as handle:
        handle.seek(0, io.SEEK_END)
        if runner == "pool":
            second = run_records_pool_resilient(
                query, stream, n_workers=n_workers,
                checkpoint=ck_base, checkpoint_every=checkpoint_every,
                resume=True, emitter=JsonlEmitter(handle),
            )
        else:
            second = run_with_recovery(
                make_engine(), stream,
                checkpoint=ck_base, checkpoint_every=checkpoint_every,
                resume=True, emitter=JsonlEmitter(handle),
            )

    got_bytes = out_path.read_bytes()
    got_failures = sorted(map(_failure_key, second.failures))
    problems = []
    if got_bytes != expected_bytes:
        problems.append(
            f"output differs ({len(got_bytes)} vs {len(expected_bytes)} bytes)"
        )
    if got_failures != expected_failures:
        problems.append(
            f"failure reports differ ({got_failures} vs {expected_failures})"
        )
    expected_matches = expected_bytes.count(b"\n")
    got_matches = got_bytes.count(b"\n")
    return KillResumeReport(
        ok=not problems,
        interrupt_at=interrupt_at,
        interrupted=bool(first.checkpoint and first.checkpoint.interrupted),
        resumed_at=second.checkpoint.resumed_at if second.checkpoint else 0,
        n_records=len(stream),
        expected_matches=expected_matches,
        got_matches=got_matches,
        detail="; ".join(problems),
    )
