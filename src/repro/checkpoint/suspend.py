"""Intra-record suspension: the JSONSki evaluation loop as durable state.

:class:`repro.engine.jsonski.JsonSki` keeps its pushdown on the Python
call stack — fast, but invisible to a checkpoint.  This module runs the
*same* Algorithm-2 streaming evaluation (same automaton, same
fast-forward functions, same match semantics) with an **explicit frame
stack**, so the whole evaluation state at any member boundary is a small
serializable value:

- the frame stack — one ``(container kind, automaton frontier, element
  counter, pending match slot)`` tuple per open container.  Frontiers,
  not state ids, cross the process boundary: ids are interning-order
  dependent (:meth:`~repro.query.automaton.QueryAutomaton.state_for_frontier`);
- the scan position;
- the matches emitted so far, as byte offsets (``None`` marks a reserved
  pre-order slot whose container is still open — the descendant
  extension);
- the structural index's cross-chunk carries: in-string / trailing
  escape for the word index, plus the structural-depth counters
  (combined/brace/bracket — the vector hot path's array cursors) for the
  position index.  A handful of ints per chunk, so a fresh process
  rebuilds bitmaps *and* depth tables for the chunk it resumes in
  **without rescanning from byte zero**
  (:meth:`~repro.bits.index.BufferIndex.seed_carries` /
  :meth:`~repro.bits.posindex.PositionBufferIndex.seed_carries`).

That bundle is :class:`EngineState`; the paper's Figure-10 giant-record
scenario can now survive a process death mid-record
(``repro '$..' big.json --checkpoint ck`` → SIGKILL → ``--resume``).

Suspension points are member boundaries (the start of an attribute or
element at any depth): every byte of the input is processed exactly once
across the whole suspend/resume chain, and the final match list is
byte-identical to an uninterrupted :meth:`JsonSki.run`.

Not supported here: filter queries (they evaluate by engine composition,
not by one automaton), ``run_with_paths``, early termination, and the
per-run statistics/trace instruments — a suspended run reports plain
matches (see docs/robustness.md for what is and is not checkpointed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.classify import CharClass
from repro.bits.index import DEFAULT_CHUNK_SIZE
from repro.checkpoint.store import fingerprint
from repro.engine.fastforward import make_fastforwarder
from repro.engine.names import decode_name
from repro.engine.output import MatchList
from repro.errors import (
    CheckpointError,
    InvariantError,
    JsonSyntaxError,
    UnsupportedQueryError,
)
from repro.engine.prepared import cached_automaton
from repro.query.automaton import ACCEPT, ALIVE, QueryAutomaton
from repro.resilience.guards import Limits, effective_limits
from repro.stream.buffer import StreamBuffer

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_QUOTE, _COMMA, _COLON = 0x22, 0x2C, 0x3A
_QUOTE_B, _BACKSLASH = b'"', 0x5C
_WS = frozenset(b" \t\n\r")

#: Frame kinds (serialized verbatim).
OBJ, ARY = "obj", "ary"

#: EngineState layout version.  2: vector-mode carries widened from
#: ``(escape, in_string)`` pairs to 5-tuples that include the structural
#: depth counters the two-stage hot path chains across chunks.
STATE_VERSION = 2


class _Suspend(Exception):
    """Internal: the current step's byte budget is spent."""


class _Frame:
    """One open container: the explicit form of a ``_Run`` stack frame.

    ``await_flags`` is transient within a drive loop (the status flags of
    the value just consumed, consulted for G4 and delimiter handling); at
    a suspension point it is non-``None`` only on frames with an open
    child, where it equals the child's own status flags — so it is
    reconstructed, never serialized.
    """

    __slots__ = ("kind", "state", "idx", "slot", "vstart", "await_flags")

    def __init__(self, kind: str, state: int, idx: int = 0,
                 slot: int | None = None, vstart: int = 0) -> None:
        self.kind = kind
        self.state = state
        self.idx = idx
        self.slot = slot
        self.vstart = vstart
        self.await_flags: int | None = None


@dataclass(frozen=True)
class EngineState:
    """A suspended :class:`SuspendableRun`, as plain JSON-able data."""

    query: str
    mode: str
    chunk_size: int
    cache_chunks: int | None
    pos: int
    size: int
    payload_fingerprint: int
    frames: list[dict]
    matches: list[list[int] | None]
    carries: list[list[int]]
    done: bool
    version: int = STATE_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "query": self.query,
            "mode": self.mode,
            "chunk_size": self.chunk_size,
            "cache_chunks": self.cache_chunks,
            "pos": self.pos,
            "size": self.size,
            "payload_fingerprint": self.payload_fingerprint,
            "frames": self.frames,
            "matches": self.matches,
            "carries": self.carries,
            "done": self.done,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineState":
        if data.get("version") != STATE_VERSION:
            raise CheckpointError(
                f"engine state version {data.get('version')!r} is not {STATE_VERSION}"
            )
        try:
            return cls(
                query=data["query"],
                mode=data["mode"],
                chunk_size=data["chunk_size"],
                cache_chunks=data["cache_chunks"],
                pos=data["pos"],
                size=data["size"],
                payload_fingerprint=data["payload_fingerprint"],
                frames=data["frames"],
                matches=data["matches"],
                carries=data["carries"],
                done=data["done"],
            )
        except KeyError as exc:
            raise CheckpointError(f"engine state is missing field {exc}") from None


class SuspendableRun:
    """One resumable streaming evaluation over one record.

    Drive it with :meth:`step` until it returns ``True``; call
    :meth:`suspend` between steps to capture an :class:`EngineState`
    (and :meth:`resume` in any process — including a fresh one — to
    continue).

    >>> run = SuspendableRun.begin("$.a", b'{"a": 1, "b": 2}')
    >>> run.step()
    True
    >>> run.matches().values()
    [1]
    """

    def __init__(
        self,
        automaton: QueryAutomaton,
        buffer: StreamBuffer,
        query_text: str,
        mode: str,
        limits: Limits | None,
    ) -> None:
        self.qa = automaton
        self.buffer = buffer
        self.query_text = query_text
        self.mode = mode
        self.limits = effective_limits(limits)
        self.deadline = self.limits.deadline
        self.data = buffer.data
        self.size = len(buffer.data)
        self.ff = make_fastforwarder(buffer)
        self.pos = 0
        self.done = False
        #: Match offsets: ``[start, end]`` or ``None`` for a reserved
        #: pre-order slot whose container is still open.
        self._matches: list[list[int] | None] = []
        self._frames: list[_Frame] = []
        self._names: dict[bytes, str] = {}
        self._budget: int | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def begin(
        cls,
        query: str,
        data: bytes | str,
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int | None = 4,
        limits: Limits | None = None,
    ) -> "SuspendableRun":
        """Start a fresh suspendable evaluation of ``query`` over ``data``."""
        from repro.jsonpath.parser import parse_path

        path = parse_path(query)
        if path.has_filter:
            raise UnsupportedQueryError(
                "filter queries evaluate by engine composition and cannot "
                "be suspended; use JsonSki without --checkpoint"
            )
        automaton = cached_automaton(path)
        buffer = StreamBuffer(data, mode=mode, chunk_size=chunk_size, cache_chunks=cache_chunks)
        run = cls(automaton, buffer, query, mode, limits)
        run.limits.check_record_size(run.size)
        run._start()
        return run

    @classmethod
    def resume(
        cls,
        data: bytes | str,
        state: "EngineState | dict",
        limits: Limits | None = None,
    ) -> "SuspendableRun":
        """Re-enter a suspended evaluation in this (possibly fresh) process.

        ``data`` must be the same payload the run was suspended over —
        match offsets and the scan position are byte offsets into it; a
        fingerprint mismatch raises :class:`~repro.errors.CheckpointError`
        instead of resuming wrong.
        """
        if isinstance(state, dict):
            state = EngineState.from_dict(state)
        if isinstance(data, str):
            data = data.encode("utf-8")
        if len(data) != state.size or fingerprint(data) != state.payload_fingerprint:
            raise CheckpointError(
                "refusing to resume: the input does not match the suspended "
                f"run ({len(data)} bytes vs {state.size} at suspension)"
            )
        automaton = cached_automaton(state.query)
        buffer = StreamBuffer(
            data, mode=state.mode, chunk_size=state.chunk_size, cache_chunks=state.cache_chunks
        )
        buffer.index.seed_carries(state.carries)
        run = cls(automaton, buffer, state.query, state.mode, limits)
        run.pos = state.pos
        run.done = state.done
        run._matches = [list(entry) if entry is not None else None for entry in state.matches]
        for serialized in state.frames:
            frame = _Frame(
                kind=serialized["kind"],
                state=automaton.state_for_frontier(serialized["frontier"]),
                idx=serialized["idx"],
                slot=serialized["slot"],
                vstart=serialized["vstart"],
            )
            run._frames.append(frame)
        # A non-top frame is always waiting on the container right above
        # it; its pending status flags are the child's own (see _Frame).
        for parent, child in zip(run._frames, run._frames[1:]):
            parent.await_flags = automaton.status_flags(child.state)
        return run

    def suspend(self) -> EngineState:
        """Capture the current state (only legal between :meth:`step` calls)."""
        frames = [
            {
                "kind": frame.kind,
                "frontier": sorted(self.qa.frontier(frame.state)),
                "idx": frame.idx,
                "slot": frame.slot,
                "vstart": frame.vstart,
            }
            for frame in self._frames
        ]
        return EngineState(
            query=self.query_text,
            mode=self.mode,
            chunk_size=self.buffer.index.chunk_size,
            cache_chunks=self.buffer.index.cache_chunks,
            pos=self.pos,
            size=self.size,
            payload_fingerprint=fingerprint(self.data),
            frames=frames,
            matches=[list(entry) if entry is not None else None for entry in self._matches],
            carries=[list(pair) for pair in self.buffer.index.carries_snapshot()],
            done=self.done,
        )

    # -- driving --------------------------------------------------------

    def step(self, max_bytes: int | None = None) -> bool:
        """Advance the evaluation by roughly ``max_bytes`` input bytes.

        Returns ``True`` when the record is fully processed.  With a
        budget, the run suspends at the first member boundary at or past
        ``pos + max_bytes`` (a single fast-forward may overshoot — the
        suspension point is always a clean boundary).  ``None`` runs to
        completion.
        """
        if self.done:
            return True
        self._budget = None if max_bytes is None else self.pos + max(1, max_bytes)
        try:
            while self._frames:
                frame = self._frames[-1]
                if frame.await_flags is not None:
                    self._post_value(frame)
                elif frame.kind == OBJ:
                    self._obj_member(frame)
                else:
                    self._ary_member(frame)
            self.done = True
        except _Suspend:
            return False
        return True

    def run_to_completion(self) -> MatchList:
        """Drive to the end and return the matches."""
        self.step(None)
        return self.matches()

    def matches(self) -> MatchList:
        """Matches emitted so far, in document order.

        Before completion a reserved-but-unfilled slot (an open container
        match under the descendant extension) raises on access, exactly
        like :class:`~repro.engine.output.MatchList` mid-run.
        """
        out = MatchList()
        for entry in self._matches:
            if entry is None:
                out.reserve()
            else:
                out.add(self.data, entry[0], entry[1])
        return out

    def match_offsets(self) -> list[tuple[int, int] | None]:
        """Raw ``(start, end)`` offsets (``None`` = reserved, still open)."""
        return [tuple(entry) if entry is not None else None for entry in self._matches]

    # -- plumbing shared with repro.engine.jsonski._Run -----------------

    def _skip_ws(self, pos: int) -> int:
        data, size = self.data, self.size
        while pos < size and data[pos] in _WS:
            pos += 1
        return pos

    def _rstrip(self, start: int, end: int) -> int:
        data = self.data
        while end > start and data[end - 1] in _WS:
            end -= 1
        return end

    def _name(self, raw: bytes) -> str:
        cached = self._names.get(raw)
        if cached is None:
            cached = self._names[raw] = decode_name(raw)
        return cached

    def _emit(self, vstart: int, vend: int) -> None:
        self._matches.append([vstart, vend])

    def _reserve(self) -> int:
        self._matches.append(None)
        return len(self._matches) - 1

    def _fill(self, slot: int, vstart: int, vend: int) -> None:
        if self._matches[slot] is not None:
            raise InvariantError(f"slot {slot} already filled")
        self._matches[slot] = [vstart, vend]

    def _skip_value(self, vstart: int, vbyte: int, in_object: bool) -> int:
        if vbyte == _LBRACE:
            return self.ff.go_over_obj(vstart)
        if vbyte == _LBRACKET:
            return self.ff.go_over_ary(vstart)
        return self.ff.go_over_pri(vstart, in_object=in_object)

    @staticmethod
    def _container_byte(vbyte: int) -> bool:
        return vbyte == _LBRACE or vbyte == _LBRACKET

    def _emit_end(self, vstart: int, vbyte: int, vend: int) -> int:
        if self._container_byte(vbyte):
            return vend
        return self._rstrip(vstart, vend)

    # -- start / container entry ----------------------------------------

    def _start(self) -> None:
        pos = self._skip_ws(0)
        if pos >= self.size:
            raise JsonSyntaxError("empty input", 0)
        byte = self.data[pos]
        if byte == _LBRACE or byte == _LBRACKET:
            self.pos = pos
            self._enter_container(self.qa.start_state, pos, byte, slot=None)
        else:
            # A primitive root cannot match any path with at least one step.
            self.done = True
        if not self._frames:
            self.done = True

    def _enter_container(self, state: int, vstart: int, vbyte: int, slot: int | None) -> None:
        """The prologue of ``_Run._object`` / ``_Run._array``: either the
        container is consumed outright (empty, or irrelevant to the query
        — a G2 whole-container skip) and ``self.pos`` lands after it, or
        a frame is pushed with ``self.pos`` at the first member."""
        depth = len(self._frames) + 1
        self.limits.enter(depth, vstart)
        data, qa, ff = self.data, self.qa, self.ff
        is_object = vbyte == _LBRACE
        closer = _RBRACE if is_object else _RBRACKET
        pos = self._skip_ws(vstart + 1)
        if pos >= self.size:
            kind = "object" if is_object else "array"
            raise JsonSyntaxError(f"stream ended inside an {kind}", pos)
        if data[pos] == closer:
            self.pos = pos + 1
            return
        relevant = qa.can_match_in_object(state) if is_object else qa.can_match_in_array(state)
        if not relevant:
            end = ff.go_to_obj_end(pos) if is_object else ff.go_to_ary_end(pos)
            self.pos = end
            return
        frame = _Frame(OBJ if is_object else ARY, state, idx=0, slot=slot, vstart=vstart)
        self._frames.append(frame)
        self.pos = pos

    def _pop(self, end: int) -> None:
        """A container closed at ``end``; fill its pending slot, hand the
        position back to the parent (whose ``await_flags`` is pending)."""
        frame = self._frames.pop()
        self.pos = end
        if frame.slot is not None:
            self._fill(frame.slot, frame.vstart, end)

    # -- member steps ----------------------------------------------------

    def _dispatch_value(self, frame: _Frame, state2: int, flags: int,
                        vstart: int, vbyte: int, in_object: bool) -> None:
        """Consume (or descend into) one attribute/element value; mirrors
        the flag dispatch of ``_Run._object`` / ``_Run._array``."""
        frame.await_flags = flags
        if flags == 0:  # UNMATCHED: G2
            self.pos = self._skip_value(vstart, vbyte, in_object)
        elif flags == ACCEPT:  # G3: skip and record
            vend = self._skip_value(vstart, vbyte, in_object)
            self._emit(vstart, self._emit_end(vstart, vbyte, vend))
            self.pos = vend
        elif flags == ALIVE:  # MATCHED: descend (containers) / dead end
            if self._container_byte(vbyte):
                self._enter_container(state2, vstart, vbyte, slot=None)
            else:
                self.pos = self.ff.go_over_pri(vstart, in_object=in_object)
        else:  # ACCEPT | ALIVE: pre-order — reserve before descending
            slot = self._reserve()
            if self._container_byte(vbyte):
                depth_before = len(self._frames)
                self._enter_container(state2, vstart, vbyte, slot=slot)
                if len(self._frames) == depth_before:
                    # Consumed outright (empty, or irrelevant to the
                    # query): no frame will pop to fill the slot.
                    self._fill(slot, vstart, self.pos)
            else:
                vend = self.ff.go_over_pri(vstart, in_object=in_object)
                self._fill(slot, vstart, self._emit_end(vstart, vbyte, vend))
                self.pos = vend

    def _obj_member(self, frame: _Frame) -> None:
        """One iteration of the ``_Run._object`` member loop; ``self.pos``
        is at the start of an attribute name (a suspension point)."""
        pos = self.pos
        if self._budget is not None and pos >= self._budget:
            raise _Suspend
        if pos >= self.size:
            raise JsonSyntaxError("stream ended inside an object", pos)
        if self.deadline is not None:
            self.deadline.check(pos)
        data, qa, ff = self.data, self.qa, self.ff
        state = frame.state
        expected = qa.expected_type(state)
        if expected == "object" or expected == "array":
            ended, p1, name_raw, vstart = ff.go_to_obj_attr(pos, expected)  # G1
            if ended:
                self._pop(p1)
                return
        else:
            if data[pos] != _QUOTE:
                raise JsonSyntaxError("expected attribute name", pos)
            close = data.find(_QUOTE_B, pos + 1)
            if close < 0:
                raise JsonSyntaxError("unterminated attribute name", pos)
            if data[close - 1] == _BACKSLASH:
                close = self.buffer.scanner.find_next(CharClass.QUOTE, pos + 1)
                if close < 0:
                    raise JsonSyntaxError("unterminated attribute name", pos)
            colon = self._skip_ws(close + 1)
            if colon >= self.size or data[colon] != _COLON:
                raise JsonSyntaxError("attribute without ':'", close)
            name_raw = data[pos + 1 : close]
            vstart = self._skip_ws(colon + 1)
        name = self._name(name_raw)
        state2 = qa.on_key(state, name)
        flags = qa.status_flags(state2)
        if vstart >= self.size:
            raise JsonSyntaxError("stream ended before attribute value", vstart)
        self._dispatch_value(frame, state2, flags, vstart, data[vstart], in_object=True)

    def _ary_member(self, frame: _Frame) -> None:
        """One iteration of the ``_Run._array`` element loop; ``self.pos``
        is at the start of element ``frame.idx`` (a suspension point)."""
        pos = self.pos
        if self._budget is not None and pos >= self._budget:
            raise _Suspend
        if self.deadline is not None:
            self.deadline.check(pos)
        data, qa, ff = self.data, self.qa, self.ff
        state = frame.state
        rng = qa.element_range(state)
        if rng is not None:
            start, stop = rng
            if stop is not None and frame.idx >= stop:
                end = ff.go_to_ary_end(pos)  # G5 (past the range)
                self._pop(end)
                return
            if frame.idx < start:
                ended, p1, skipped = ff.go_over_elems(pos, start - frame.idx)  # G5
                if ended:
                    self._pop(p1)
                    return
                frame.idx += skipped
                self.pos = p1
                return
        if pos >= self.size:
            raise JsonSyntaxError("stream ended inside an array", pos)
        vbyte = data[pos]
        expected = qa.expected_type(state)
        want_byte = _LBRACE if expected == "object" else _LBRACKET if expected == "array" else -1
        if want_byte >= 0 and vbyte != want_byte:
            ended, p1, commas = ff.go_to_ary_elem(pos, expected)  # G1
            if ended:
                self._pop(p1)
                return
            frame.idx += commas
            self.pos = p1
            return
        state2 = qa.on_element(state, frame.idx)
        flags = qa.status_flags(state2)
        self._dispatch_value(frame, state2, flags, pos, vbyte, in_object=False)

    def _post_value(self, frame: _Frame) -> None:
        """After a member's value: G4 for objects, then the delimiter."""
        flags = frame.await_flags
        frame.await_flags = None
        data, size = self.data, self.size
        pos = self.pos
        if frame.kind == OBJ:
            if flags and self.qa.object_skippable(frame.state):
                end = self.ff.go_to_obj_end(pos)  # G4
                self._pop(end)
                return
            pos = self._skip_ws(pos)
            byte = data[pos] if pos < size else -1
            if byte == _COMMA:
                self.pos = self._skip_ws(pos + 1)
            elif byte == _RBRACE:
                self._pop(pos + 1)
            else:
                raise JsonSyntaxError("expected ',' or '}' in object", pos)
        else:
            pos = self._skip_ws(pos)
            byte = data[pos] if pos < size else -1
            if byte == _COMMA:
                frame.idx += 1
                self.pos = self._skip_ws(pos + 1)
            elif byte == _RBRACKET:
                self._pop(pos + 1)
            else:
                raise JsonSyntaxError("expected ',' or ']' in array", pos)
