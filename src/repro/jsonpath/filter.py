"""Filter expressions: ``[?(@.price > 10)]`` (extension).

The paper's dialect has no predicates; they are the most-requested
JSONPath feature beyond it, so this reproduction adds a useful core:

.. code-block:: text

    filter     ::= '[?(' or-expr ')]'
    or-expr    ::= and-expr ('||' and-expr)*
    and-expr   ::= unary ('&&' unary)*
    unary      ::= '!' unary | '(' or-expr ')' | predicate
    predicate  ::= rel-path (op literal)?          # bare path = existence
    rel-path   ::= '@' ('.' NAME | '[' INT ']' | '[' STRING ']')*
    op         ::= '==' '!=' '<' '<=' '>' '>='
    literal    ::= NUMBER | STRING | true | false | null

Comparison semantics: the relative path is resolved against the candidate
element; no match ⇒ the predicate is false; the *first* match is compared.
Ordering comparisons require both sides to be numbers, or both strings;
``==``/``!=`` compare any equal/unequal values (with ``!=`` false when the
path has no match at all — absent is not "unequal").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Comparison operators, longest first for the scanner.
OPERATORS = ("==", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class RelPath:
    """A ``@``-rooted chain of child/index steps."""

    steps: tuple[object, ...]  # Child | Index (from repro.jsonpath.ast)

    def unparse(self) -> str:
        return "@" + "".join(step.unparse() for step in self.steps)

    def resolve(self, value: Any) -> tuple[bool, Any]:
        """(found, value) of the first match under a parsed element."""
        from repro.jsonpath.ast import Child, Index

        current = value
        for step in self.steps:
            if isinstance(step, Child):
                if isinstance(current, dict) and step.name in current:
                    current = current[step.name]
                else:
                    return False, None
            elif isinstance(step, Index):
                if isinstance(current, list) and 0 <= step.index < len(current):
                    current = current[step.index]
                else:
                    return False, None
            else:  # pragma: no cover - parser only emits Child/Index
                raise TypeError(f"unsupported relative step {step!r}")
        return True, current


@dataclass(frozen=True)
class FilterExpr:
    """Base class for predicate nodes."""

    def unparse(self) -> str:
        raise NotImplementedError

    def matches(self, value: Any) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Exists(FilterExpr):
    path: RelPath

    def unparse(self) -> str:
        return self.path.unparse()

    def matches(self, value: Any) -> bool:
        found, _ = self.path.resolve(value)
        return found


@dataclass(frozen=True)
class Comparison(FilterExpr):
    path: RelPath
    op: str
    literal: Any

    def unparse(self) -> str:
        if isinstance(self.literal, str):
            escaped = self.literal.replace("\\", "\\\\").replace("'", "\\'")
            lit = f"'{escaped}'"
        elif self.literal is True:
            lit = "true"
        elif self.literal is False:
            lit = "false"
        elif self.literal is None:
            lit = "null"
        else:
            lit = repr(self.literal)
        return f"{self.path.unparse()} {self.op} {lit}"

    def matches(self, value: Any) -> bool:
        found, actual = self.path.resolve(value)
        if not found:
            return False
        lit = self.literal
        if self.op == "==":
            return _json_equal(actual, lit)
        if self.op == "!=":
            return not _json_equal(actual, lit)
        # Ordering: numbers with numbers (bool excluded), strings with strings.
        if isinstance(actual, bool) or isinstance(lit, bool):
            return False
        if isinstance(actual, (int, float)) and isinstance(lit, (int, float)):
            pass
        elif isinstance(actual, str) and isinstance(lit, str):
            pass
        else:
            return False
        if self.op == "<":
            return actual < lit
        if self.op == "<=":
            return actual <= lit
        if self.op == ">":
            return actual > lit
        return actual >= lit


def _json_equal(a: Any, b: Any) -> bool:
    """JSON equality: bools are not numbers."""
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    return a == b


@dataclass(frozen=True)
class Not(FilterExpr):
    operand: FilterExpr

    def unparse(self) -> str:
        return f"!({self.operand.unparse()})"

    def matches(self, value: Any) -> bool:
        return not self.operand.matches(value)


@dataclass(frozen=True)
class And(FilterExpr):
    left: FilterExpr
    right: FilterExpr

    def unparse(self) -> str:
        return f"{self.left.unparse()} && {self.right.unparse()}"

    def matches(self, value: Any) -> bool:
        return self.left.matches(value) and self.right.matches(value)


@dataclass(frozen=True)
class Or(FilterExpr):
    left: FilterExpr
    right: FilterExpr

    def unparse(self) -> str:
        return f"{self.left.unparse()} || {self.right.unparse()}"

    def matches(self, value: Any) -> bool:
        return self.left.matches(value) or self.right.matches(value)
