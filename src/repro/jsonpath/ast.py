"""JSONPath abstract syntax.

A parsed path is a :class:`Path`: a sequence of :class:`Step` objects
applied from the anonymous root ``$``.  Each step carries the structural
knowledge the query automaton exploits for fast-forwarding:

- ``container`` — the container kind the step selects *from* (``'object'``
  for key steps, ``'array'`` for index steps, ``'any'`` for descendants);
- ``value_kind()`` on :class:`Path` — the container kind a step's selected
  value must have for the path to continue, which is the type-inference
  rule of Section 3.2 ("from ``$.place.name`` we can infer that ``place``
  is an object").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Step:
    """Base class for path steps."""

    #: Container kind this step selects from: 'object', 'array', or 'any'.
    container = "any"

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Child(Step):
    """``.name`` or ``['name']`` — select one attribute of an object."""

    name: str
    container = "object"

    def unparse(self) -> str:
        if self.name.isidentifier():
            return f".{self.name}"
        escaped = self.name.replace("\\", "\\\\").replace("'", "\\'")
        return f"['{escaped}']"


@dataclass(frozen=True)
class WildcardChild(Step):
    """``.*`` — select every attribute of an object."""

    container = "object"

    def unparse(self) -> str:
        return ".*"


@dataclass(frozen=True)
class Index(Step):
    """``[n]`` — select the element at index ``n`` (0-based, ``n >= 0``)."""

    index: int
    container = "array"

    def unparse(self) -> str:
        return f"[{self.index}]"


@dataclass(frozen=True)
class Slice(Step):
    """``[m:n]`` — select elements with ``m <= index < n`` (paper's range).

    ``stop`` may be ``None`` for an open range ``[m:]``.
    """

    start: int
    stop: int | None
    container = "array"

    def unparse(self) -> str:
        stop = "" if self.stop is None else str(self.stop)
        return f"[{self.start}:{stop}]"


@dataclass(frozen=True)
class WildcardIndex(Step):
    """``[*]`` — select every element of an array."""

    container = "array"

    def unparse(self) -> str:
        return "[*]"


@dataclass(frozen=True)
class MultiName(Step):
    """``['a','b']`` — select several attributes of an object (extension).

    Matches are produced in *document order* (the streaming-natural
    semantics); names are normalized to a sorted, deduplicated tuple.
    """

    names: tuple[str, ...]
    container = "object"

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(sorted(set(self.names))))

    def unparse(self) -> str:
        quoted = ",".join(
            "'" + name.replace("\\", "\\\\").replace("'", "\\'") + "'" for name in self.names
        )
        return f"[{quoted}]"


@dataclass(frozen=True)
class MultiIndex(Step):
    """``[1,3,5]`` — select several array elements (extension).

    Matches are produced in document order; indices are normalized to a
    sorted, deduplicated tuple.
    """

    indices: tuple[int, ...]
    container = "array"

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(sorted(set(self.indices))))

    def unparse(self) -> str:
        return "[" + ",".join(str(i) for i in self.indices) + "]"


@dataclass(frozen=True)
class Filter(Step):
    """``[?(expr)]`` — keep array elements satisfying a predicate
    (extension; see :mod:`repro.jsonpath.filter`)."""

    expr: object  # FilterExpr
    container = "array"

    def unparse(self) -> str:
        return f"[?({self.expr.unparse()})]"


@dataclass(frozen=True)
class Descendant(Step):
    """``..name`` — select the named attribute at any depth (extension)."""

    name: str
    container = "any"

    def unparse(self) -> str:
        return f"..{self.name}"


#: Steps that select from objects by key.
KEY_STEPS = (Child, WildcardChild, MultiName, Descendant)
#: Steps that select from arrays by position.
INDEX_STEPS = (Index, Slice, WildcardIndex, MultiIndex, Filter)


@dataclass(frozen=True)
class Path:
    """A complete JSONPath: ``$`` followed by ``steps``."""

    steps: tuple[Step, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def unparse(self) -> str:
        """Render back to JSONPath text (inverse of ``parse_path``)."""
        return "$" + "".join(step.unparse() for step in self.steps)

    def value_kind(self, depth: int) -> str:
        """Container kind the value selected by step ``depth`` must have.

        This is the type inference of Section 3.2: the value must be
        whatever the *next* step selects from.  Returns ``'object'``,
        ``'array'``, or ``'unknown'`` (last level, or below a descendant
        step whose traversal admits both kinds).
        """
        if depth + 1 >= len(self.steps):
            return "unknown"
        nxt = self.steps[depth + 1]
        if isinstance(nxt, Descendant):
            return "unknown"
        if nxt.container == "object":
            return "object"
        if nxt.container == "array":
            return "array"
        return "unknown"

    @property
    def has_descendant(self) -> bool:
        return any(isinstance(s, Descendant) for s in self.steps)

    @property
    def has_filter(self) -> bool:
        return any(isinstance(s, Filter) for s in self.steps)
