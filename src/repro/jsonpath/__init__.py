"""JSONPath front-end.

Supports the notation set of the paper's JSONSki implementation
(Section 5.1): root ``$``, child ``.name`` / ``['name']``, array index
``[n]``, index range ``[m:n]``, and wildcard ``[*]`` / ``.*`` — plus the
descendant operator ``..name``, which the paper lists as future work and
this reproduction implements as an extension (with the fast-forward
limitation the paper predicts: value types cannot be inferred below a
descendant step).
"""

from repro.jsonpath.ast import (
    Child,
    Descendant,
    Index,
    Path,
    Slice,
    Step,
    WildcardChild,
    WildcardIndex,
)
from repro.jsonpath.parser import parse_path

__all__ = [
    "Child",
    "Descendant",
    "Index",
    "Path",
    "Slice",
    "Step",
    "WildcardChild",
    "WildcardIndex",
    "parse_path",
]
