"""Recursive-descent parser for the supported JSONPath dialect.

Grammar (after the mandatory ``$`` root)::

    path      ::= '$' step*
    step      ::= '.' NAME | '.' '*' | '..' NAME | bracket
    bracket   ::= '[' selector ']'
    selector  ::= '*' | INT (',' INT)* | INT? ':' INT? | STRING (',' STRING)*

String selectors accept single or double quotes with backslash escapes.
Union selectors — ``[1,3,5]`` and ``['a','b']`` — are supported as an
extension (document-order match semantics).
Errors are reported as :class:`repro.errors.JsonPathSyntaxError` with the
offending offset.
"""

from __future__ import annotations

from repro.errors import JsonPathSyntaxError
from repro.jsonpath.ast import (
    Child,
    Descendant,
    Filter,
    Index,
    MultiIndex,
    MultiName,
    Path,
    Slice,
    Step,
    WildcardChild,
    WildcardIndex,
)
from repro.jsonpath.filter import And, Comparison, Exists, FilterExpr, Not, Or, RelPath

_NAME_EXTRA = "_-"


class _Cursor:
    """Character cursor with error reporting context."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            self.error(f"expected {ch!r}")
        self.pos += 1

    def error(self, message: str) -> None:
        raise JsonPathSyntaxError(message, self.text, self.pos)

    def skip_spaces(self) -> None:
        while self.peek() == " ":
            self.pos += 1


def _parse_name(cur: _Cursor) -> str:
    start = cur.pos
    while cur.peek() and (cur.peek().isalnum() or cur.peek() in _NAME_EXTRA):
        cur.advance()
    if cur.pos == start:
        cur.error("expected attribute name")
    return cur.text[start : cur.pos]


def _parse_int(cur: _Cursor) -> int:
    start = cur.pos
    while cur.peek().isdigit():
        cur.advance()
    if cur.pos == start:
        cur.error("expected integer")
    return int(cur.text[start : cur.pos])


def _parse_quoted(cur: _Cursor) -> str:
    quote = cur.advance()
    parts: list[str] = []
    while True:
        ch = cur.peek()
        if not ch:
            cur.error("unterminated string selector")
        cur.advance()
        if ch == "\\":
            nxt = cur.advance()
            if not nxt:
                cur.error("dangling escape in string selector")
            parts.append(nxt)
        elif ch == quote:
            return "".join(parts)
        else:
            parts.append(ch)


def _parse_bracket(cur: _Cursor) -> Step:
    cur.expect("[")
    ch = cur.peek()
    if ch == "?":
        cur.advance()
        cur.expect("(")
        cur.skip_spaces()
        expr = _parse_or_expr(cur)
        cur.skip_spaces()
        cur.expect(")")
        cur.expect("]")
        return Filter(expr)
    if ch == "*":
        cur.advance()
        cur.expect("]")
        return WildcardIndex()
    if ch in "'\"":
        names = [_parse_quoted(cur)]
        while cur.peek() == ",":
            cur.advance()
            if cur.peek() not in "'\"":
                cur.error("expected quoted name after ','")
            names.append(_parse_quoted(cur))
        cur.expect("]")
        if len(names) == 1:
            return Child(names[0])
        return MultiName(tuple(names))
    if ch == ":":
        cur.advance()
        stop = _parse_int(cur) if cur.peek().isdigit() else None
        cur.expect("]")
        return Slice(0, stop)
    if ch.isdigit():
        first = _parse_int(cur)
        if cur.peek() == ":":
            cur.advance()
            stop = _parse_int(cur) if cur.peek().isdigit() else None
            if stop is not None and stop <= first:
                cur.error(f"empty range [{first}:{stop}]")
            cur.expect("]")
            return Slice(first, stop)
        if cur.peek() == ",":
            indices = [first]
            while cur.peek() == ",":
                cur.advance()
                indices.append(_parse_int(cur))
            cur.expect("]")
            return MultiIndex(tuple(indices))
        cur.expect("]")
        return Index(first)
    cur.error("expected '*', index, range, or quoted name")
    raise AssertionError("unreachable")


def _parse_or_expr(cur: _Cursor) -> FilterExpr:
    left = _parse_and_expr(cur)
    cur.skip_spaces()
    while cur.peek() == "|":
        cur.expect("|")
        cur.expect("|")
        cur.skip_spaces()
        left = Or(left, _parse_and_expr(cur))
        cur.skip_spaces()
    return left


def _parse_and_expr(cur: _Cursor) -> FilterExpr:
    left = _parse_unary(cur)
    cur.skip_spaces()
    while cur.peek() == "&":
        cur.expect("&")
        cur.expect("&")
        cur.skip_spaces()
        left = And(left, _parse_unary(cur))
        cur.skip_spaces()
    return left


def _parse_unary(cur: _Cursor) -> FilterExpr:
    cur.skip_spaces()
    if cur.peek() == "!":
        cur.advance()
        return Not(_parse_unary(cur))
    if cur.peek() == "(":
        cur.advance()
        expr = _parse_or_expr(cur)
        cur.skip_spaces()
        cur.expect(")")
        return expr
    return _parse_predicate(cur)


def _parse_rel_path(cur: _Cursor) -> RelPath:
    cur.expect("@")
    steps: list[Step] = []
    while True:
        ch = cur.peek()
        if ch == ".":
            cur.advance()
            steps.append(Child(_parse_name(cur)))
        elif ch == "[":
            cur.advance()
            inner = cur.peek()
            if inner in "'\"":
                steps.append(Child(_parse_quoted(cur)))
            elif inner.isdigit():
                steps.append(Index(_parse_int(cur)))
            else:
                cur.error("expected index or quoted name in filter path")
            cur.expect("]")
        else:
            break
    return RelPath(tuple(steps))


def _parse_literal(cur: _Cursor):
    cur.skip_spaces()
    ch = cur.peek()
    if ch in "'\"":
        return _parse_quoted(cur)
    if ch.isdigit() or ch == "-":
        start = cur.pos
        if ch == "-":
            cur.advance()
        while cur.peek().isdigit():
            cur.advance()
        if cur.peek() == ".":
            cur.advance()
            while cur.peek().isdigit():
                cur.advance()
        if cur.peek() in "eE":
            cur.advance()
            if cur.peek() in "+-":
                cur.advance()
            while cur.peek().isdigit():
                cur.advance()
        text = cur.text[start : cur.pos]
        try:
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                cur.error(f"invalid number literal {text!r}")
    for keyword, value in (("true", True), ("false", False), ("null", None)):
        if cur.text.startswith(keyword, cur.pos):
            cur.pos += len(keyword)
            return value
    cur.error("expected a literal (number, string, true, false, null)")


def _parse_predicate(cur: _Cursor) -> FilterExpr:
    cur.skip_spaces()
    if cur.peek() != "@":
        cur.error("expected '@' at the start of a filter predicate")
    path = _parse_rel_path(cur)
    cur.skip_spaces()
    for op in ("==", "!=", "<=", ">=", "<", ">"):
        if cur.text.startswith(op, cur.pos):
            cur.pos += len(op)
            literal = _parse_literal(cur)
            return Comparison(path, op, literal)
    return Exists(path)


def parse_path(expression: str) -> Path:
    """Parse a JSONPath expression into a :class:`Path`.

    >>> parse_path("$.place.name").unparse()
    '$.place.name'
    >>> parse_path("$.pd[*].cp[1:3].id").unparse()
    '$.pd[*].cp[1:3].id'
    """
    cur = _Cursor(expression.strip())
    cur.expect("$")
    steps: list[Step] = []
    while cur.peek():
        ch = cur.peek()
        if ch == ".":
            cur.advance()
            if cur.peek() == ".":
                cur.advance()
                steps.append(Descendant(_parse_name(cur)))
            elif cur.peek() == "*":
                cur.advance()
                steps.append(WildcardChild())
            else:
                steps.append(Child(_parse_name(cur)))
        elif ch == "[":
            steps.append(_parse_bracket(cur))
        else:
            cur.error(f"unexpected character {ch!r}")
    if not steps:
        cur.error("path must contain at least one step after '$'")
    return Path(tuple(steps))
