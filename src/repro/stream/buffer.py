"""The indexed input buffer shared by the streaming engines.

As in the paper's evaluation, inputs are preloaded into memory; streaming
refers to the *single forward pass* and the bounded auxiliary state (the
chunked structural index with a small LRU — see
:class:`repro.bits.index.BufferIndex`).
"""

from __future__ import annotations

from repro.bits.classify import WHITESPACE
from repro.bits.index import DEFAULT_CHUNK_SIZE, BufferIndex
from repro.bits.posindex import PositionBufferIndex
from repro.bits.scanner import Scanner, make_scanner

_WS = frozenset(WHITESPACE)


class StreamBuffer:
    """JSON text plus its lazily-built structural index and scanner.

    Parameters mirror :class:`BufferIndex`; ``mode`` selects the scanner
    implementation (``'vector'`` default, ``'word'`` for the
    paper-faithful word-at-a-time mode).
    """

    def __init__(
        self,
        data: bytes | str,
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int | None = 4,
    ) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.data = data
        self.mode = mode
        # Vector mode reads only per-class positions, so it can use the
        # cheaper position-based index; word mode needs the mirrored word
        # bitmaps of Algorithm 3.
        if mode == "vector":
            self.index = PositionBufferIndex(data, chunk_size=chunk_size, cache_chunks=cache_chunks)
        else:
            self.index = BufferIndex(data, chunk_size=chunk_size, cache_chunks=cache_chunks)
        self.scanner: Scanner = make_scanner(self.index, mode)

    def __len__(self) -> int:
        return len(self.data)

    def byte_at(self, pos: int) -> int:
        """Byte value at ``pos`` (-1 past the end)."""
        return self.data[pos] if pos < len(self.data) else -1

    def skip_ws(self, pos: int) -> int:
        """First position at or after ``pos`` holding a non-whitespace byte.

        JSON whitespace between tokens is typically zero or one character
        in machine-generated data, so a byte loop suffices here; heavy
        indentation would make this the only character-at-a-time path in
        the engine.
        """
        data = self.data
        n = len(data)
        while pos < n and data[pos] in _WS:
            pos += 1
        return pos

    def slice(self, start: int, end: int) -> bytes:
        """Raw text of ``[start, end)``."""
        return self.data[start:end]

    def rstrip_ws(self, start: int, end: int) -> int:
        """End position of ``[start, end)`` after trimming trailing
        whitespace (used when capturing primitive match values)."""
        data = self.data
        while end > start and data[end - 1] in _WS:
            end -= 1
        return end


def as_stream_buffer(
    data,
    mode: str = "vector",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache_chunks: int | None = 4,
) -> StreamBuffer:
    """Coerce engine input to a :class:`StreamBuffer` — the one place all
    engines share.

    Accepts raw ``bytes``/``str`` (a fresh buffer is built with the given
    index parameters), an existing :class:`StreamBuffer` (used as-is, its
    already-built index intact), or anything carrying one in a ``buffer``
    attribute — i.e. a reusable
    :class:`~repro.engine.prepared.IndexedBuffer` (duck-typed here to
    keep this low-level module free of engine imports).
    """
    if isinstance(data, StreamBuffer):
        return data
    inner = getattr(data, "buffer", None)
    if isinstance(inner, StreamBuffer):
        return inner
    return StreamBuffer(data, mode=mode, chunk_size=chunk_size, cache_chunks=cache_chunks)
