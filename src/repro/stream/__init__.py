"""Input-stream abstractions: the indexed buffer and small-record streams."""

from repro.stream.buffer import StreamBuffer
from repro.stream.filestream import MappedFile, iter_jsonl
from repro.stream.records import RecordStream

__all__ = ["MappedFile", "RecordStream", "StreamBuffer", "iter_jsonl"]
