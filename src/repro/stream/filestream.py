"""File-backed runs with OS-managed memory (mmap).

The paper preloads inputs into RAM; for files larger than comfortable,
``mmap`` gives the same byte-addressable interface with the OS paging
data in and out — combined with the engines' forward-only chunked index,
resident memory stays bounded regardless of file size (the practical
form of Figure 13/14's streaming claim).

Matches slice the mapped buffer, so the mapping must outlive them —
hence the context-manager shape:

>>> with MappedFile("big.json") as data:          # doctest: +SKIP
...     matches = repro.JsonSki("$.pd[*].id").run(data)
...     ids = matches.values()                    # decode inside the block
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Iterator


class MappedFile:
    """Context manager yielding a read-only memory-mapped buffer.

    The yielded object supports everything the engines need (len,
    indexing, slicing, ``find``, ``numpy.frombuffer``).  Decode or copy
    any results you need before leaving the block; afterwards the
    mapping is closed and match slices become invalid.

    A zero-length file (which ``mmap`` refuses to map) yields ``b""``
    rather than raising, so empty inputs behave like any other input.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self._map: mmap.mmap | None = None

    def __enter__(self):
        self._handle = open(self.path, "rb")
        try:
            self._map = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            # mmap cannot map a zero-length file.  An empty input is not
            # an error — hand back an empty read-only buffer with the
            # same interface (len, slicing, find) instead of leaking the
            # platform quirk to callers.
            self._handle.close()
            self._handle = None
            if self.path.stat().st_size == 0:
                return b""
            raise
        return self._map

    def __exit__(self, *exc_info) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def iter_jsonl(path: str | Path) -> "Iterator[bytes]":
    """Lazily yield the records of a JSONL file, one at a time.

    Unlike :meth:`repro.stream.records.RecordStream.open_jsonl` (which
    materializes the payload and an offset array — the paper's storage
    layout), this generator holds one line at a time: true
    bounded-memory streaming for record-at-a-time pipelines.
    """
    with open(path, "rb") as handle:
        for line in handle:
            record = line.strip()
            if record:
                yield record
