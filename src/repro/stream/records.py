"""Small-record streams (paper Section 5.1, "a sequence of small records").

The paper stores each small-record input "in an array, along with an
offset array for starting positions"; :class:`RecordStream` is exactly
that: one contiguous payload plus ``(start, end)`` offsets per record.
The record-parallel scenario (Figure 12) partitions the offset array
across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass
class RecordStream:
    """A concatenated sequence of JSON records with explicit offsets."""

    payload: bytes
    offsets: np.ndarray  # shape (n, 2) int64: start, end per record

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64).reshape(-1, 2)

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return len(self.payload)

    def record(self, i: int) -> bytes:
        """Raw text of record ``i``."""
        start, end = self.offsets[i]
        return self.payload[start:end]

    def __iter__(self) -> Iterator[bytes]:
        for i in range(len(self)):
            yield self.record(i)

    @classmethod
    def from_records(cls, records: list[bytes], separator: bytes = b"\n") -> "RecordStream":
        """Concatenate records with ``separator`` and compute offsets."""
        offsets = np.empty((len(records), 2), dtype=np.int64)
        pos = 0
        parts: list[bytes] = []
        for i, rec in enumerate(records):
            offsets[i] = (pos, pos + len(rec))
            parts.append(rec)
            parts.append(separator)
            pos += len(rec) + len(separator)
        return cls(payload=b"".join(parts), offsets=offsets)

    @classmethod
    def from_jsonl(cls, payload: bytes) -> "RecordStream":
        """Interpret newline-delimited JSON, skipping blank lines."""
        offsets: list[tuple[int, int]] = []
        pos = 0
        n = len(payload)
        while pos < n:
            nl = payload.find(b"\n", pos)
            end = n if nl < 0 else nl
            if payload[pos:end].strip():
                offsets.append((pos, end))
            pos = end + 1
        return cls(payload=payload, offsets=np.array(offsets, dtype=np.int64))

    @classmethod
    def open_jsonl(cls, path: str) -> "RecordStream":
        """Read a newline-delimited JSON file from disk."""
        with open(path, "rb") as handle:
            return cls.from_jsonl(handle.read())

    @classmethod
    def from_concatenated(cls, payload: bytes) -> "RecordStream":
        """Detect record boundaries in concatenated container records.

        Many feeds ship records back to back with arbitrary whitespace
        (not necessarily one per line).  The bit-parallel structural
        index finds the depth-0 closings directly — no detailed parsing —
        so the offset array is recovered in one index sweep.  Only
        container-rooted records (objects/arrays, the paper's definition
        of a JSON record) are supported; non-whitespace text between
        records raises :class:`~repro.errors.JsonSyntaxError`.
        """
        import numpy as np

        from repro.baselines.simdjson_like import structural_positions
        from repro.errors import JsonSyntaxError

        structs = structural_positions(payload)
        vals = np.frombuffer(payload, dtype=np.uint8)[structs] if len(structs) else np.empty(0, np.uint8)
        offsets: list[tuple[int, int]] = []
        depth = 0
        start = -1
        prev_end = 0
        for pos, byte in zip(structs.tolist(), vals.tolist()):
            if byte == 0x7B or byte == 0x5B:  # { [
                if depth == 0:
                    if payload[prev_end:pos].strip():
                        raise JsonSyntaxError("non-whitespace between records", prev_end)
                    start = pos
                depth += 1
            elif byte == 0x7D or byte == 0x5D:  # } ]
                depth -= 1
                if depth < 0:
                    raise JsonSyntaxError("unbalanced closing bracket", pos)
                if depth == 0:
                    offsets.append((start, pos + 1))
                    prev_end = pos + 1
        if depth != 0:
            raise JsonSyntaxError("payload ended with an unclosed record", len(payload))
        if payload[prev_end:].strip():
            raise JsonSyntaxError("trailing non-whitespace after the last record", prev_end)
        return cls(payload=payload, offsets=np.array(offsets, dtype=np.int64).reshape(-1, 2))

    def partitions(self, n_parts: int) -> list["RecordStream"]:
        """Split records round-robin-free (contiguous blocks) into
        ``n_parts`` sub-streams sharing the payload — the unit of work one
        virtual worker gets in the Figure 12 scenario."""
        if n_parts <= 0:
            raise ValueError("n_parts must be positive")
        bounds = np.linspace(0, len(self), n_parts + 1).astype(np.int64)
        return [
            RecordStream(self.payload, self.offsets[bounds[i] : bounds[i + 1]])
            for i in range(n_parts)
            if bounds[i + 1] > bounds[i]
        ]
