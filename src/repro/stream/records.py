"""Small-record streams (paper Section 5.1, "a sequence of small records").

The paper stores each small-record input "in an array, along with an
offset array for starting positions"; :class:`RecordStream` is exactly
that: one contiguous payload plus ``(start, end)`` offsets per record.
The record-parallel scenario (Figure 12) partitions the offset array
across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class RecordStream:
    """A concatenated sequence of JSON records with explicit offsets."""

    payload: bytes
    offsets: np.ndarray  # shape (n, 2) int64: start, end per record

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64).reshape(-1, 2)

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return len(self.payload)

    def record(self, i: int) -> bytes:
        """Raw text of record ``i``."""
        start, end = self.offsets[i]
        return self.payload[start:end]

    def __iter__(self) -> Iterator[bytes]:
        for i in range(len(self)):
            yield self.record(i)

    @classmethod
    def from_records(cls, records: list[bytes], separator: bytes = b"\n") -> "RecordStream":
        """Concatenate records with ``separator`` and compute offsets."""
        offsets = np.empty((len(records), 2), dtype=np.int64)
        pos = 0
        parts: list[bytes] = []
        for i, rec in enumerate(records):
            offsets[i] = (pos, pos + len(rec))
            parts.append(rec)
            parts.append(separator)
            pos += len(rec) + len(separator)
        return cls(payload=b"".join(parts), offsets=offsets)

    @classmethod
    def from_jsonl(cls, payload: bytes) -> "RecordStream":
        """Interpret newline-delimited JSON, skipping blank lines."""
        offsets: list[tuple[int, int]] = []
        pos = 0
        n = len(payload)
        while pos < n:
            nl = payload.find(b"\n", pos)
            end = n if nl < 0 else nl
            if payload[pos:end].strip():
                offsets.append((pos, end))
            pos = end + 1
        return cls(payload=payload, offsets=np.array(offsets, dtype=np.int64))

    @classmethod
    def open_jsonl(cls, path: str) -> "RecordStream":
        """Read a newline-delimited JSON file from disk."""
        with open(path, "rb") as handle:
            return cls.from_jsonl(handle.read())

    @classmethod
    def from_concatenated(cls, payload: bytes) -> "RecordStream":
        """Detect record boundaries in concatenated container records.

        Many feeds ship records back to back with arbitrary whitespace
        (not necessarily one per line).  The bit-parallel structural
        index finds the depth-0 closings directly — no detailed parsing —
        so the offset array is recovered in one index sweep.  Only
        container-rooted records (objects/arrays, the paper's definition
        of a JSON record) are supported; non-whitespace text between
        records raises :class:`~repro.errors.JsonSyntaxError`.
        """
        import numpy as np

        from repro.baselines.simdjson_like import structural_positions
        from repro.errors import JsonSyntaxError, StreamExhaustedError

        structs = structural_positions(payload)
        vals = np.frombuffer(payload, dtype=np.uint8)[structs] if len(structs) else np.empty(0, np.uint8)
        offsets: list[tuple[int, int]] = []
        depth = 0
        start = -1
        prev_end = 0
        for pos, byte in zip(structs.tolist(), vals.tolist()):
            if byte == 0x7B or byte == 0x5B:  # { [
                if depth == 0:
                    if payload[prev_end:pos].strip():
                        raise JsonSyntaxError("non-whitespace between records", prev_end)
                    start = pos
                depth += 1
            elif byte == 0x7D or byte == 0x5D:  # } ]
                depth -= 1
                if depth < 0:
                    raise JsonSyntaxError("unbalanced closing bracket", pos)
                if depth == 0:
                    offsets.append((start, pos + 1))
                    prev_end = pos + 1
        if depth != 0:
            # A trailing partial record is an exhaustion condition, not
            # garbage: the distinction lets incremental readers retry
            # with more data instead of discarding the buffer.
            raise StreamExhaustedError(
                "payload ended inside an unclosed trailing record", start
            )
        if payload[prev_end:].strip():
            raise JsonSyntaxError("trailing non-whitespace after the last record", prev_end)
        return cls(payload=payload, offsets=np.array(offsets, dtype=np.int64).reshape(-1, 2))

    @classmethod
    def from_concatenated_lenient(
        cls, payload: bytes
    ) -> "tuple[RecordStream, list[tuple[int, str]]]":
        """Boundary detection that survives malformed stretches.

        Where :meth:`from_concatenated` raises on the first structural
        problem, the lenient variant *resynchronizes*: it abandons the
        record in progress, scans forward to the next depth-0 ``{`` or
        ``[``, and resumes there.  Returns the recovered stream plus a
        skip report of ``(byte_offset, reason)`` pairs — one per region
        that had to be discarded — so callers still see what was lost.
        """
        import numpy as np

        from repro.baselines.simdjson_like import structural_positions

        structs = structural_positions(payload)
        vals = np.frombuffer(payload, dtype=np.uint8)[structs] if len(structs) else np.empty(0, np.uint8)
        offsets: list[tuple[int, int]] = []
        skipped: list[tuple[int, str]] = []
        depth = 0
        start = -1
        prev_end = 0
        for pos, byte in zip(structs.tolist(), vals.tolist()):
            if byte == 0x7B or byte == 0x5B:  # { [
                if depth == 0:
                    if payload[prev_end:pos].strip():
                        skipped.append((prev_end, "non-whitespace between records"))
                    start = pos
                depth += 1
            elif byte == 0x7D or byte == 0x5D:  # } ]
                if depth == 0:
                    # Stray closer with no open record: note it, resync.
                    skipped.append((pos, "unbalanced closing bracket"))
                    prev_end = pos + 1
                    continue
                depth -= 1
                if depth == 0:
                    offsets.append((start, pos + 1))
                    prev_end = pos + 1
        if depth != 0:
            skipped.append((start, "unclosed trailing record"))
        elif payload[prev_end:].strip():
            skipped.append((prev_end, "trailing non-whitespace after the last record"))
        stream = cls(payload=payload, offsets=np.array(offsets, dtype=np.int64).reshape(-1, 2))
        return stream, skipped

    def partitions(self, n_parts: int) -> list["RecordStream"]:
        """Split records round-robin-free (contiguous blocks) into
        ``n_parts`` sub-streams sharing the payload — the unit of work one
        virtual worker gets in the Figure 12 scenario."""
        if n_parts <= 0:
            raise ConfigurationError("n_parts must be positive")
        bounds = np.linspace(0, len(self), n_parts + 1).astype(np.int64)
        return [
            RecordStream(self.payload, self.offsets[bounds[i] : bounds[i + 1]])
            for i in range(n_parts)
            if bounds[i + 1] > bounds[i]
        ]
