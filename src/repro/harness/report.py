"""Compose the full evaluation report (the data behind EXPERIMENTS.md).

Run as a module to print every table and figure at a chosen size::

    python -m repro.harness.report --size 400000
"""

from __future__ import annotations

import argparse

from repro.harness import experiments as exp
from repro.harness.tables import render_table


def _sections(size: int, workers: int, fast: bool) -> list:
    return [
        exp.exp_table4(size),
        exp.exp_table5(size),
        exp.exp_fig10(size, workers),
        exp.exp_fig11(size),
        exp.exp_fig12(size, workers),
        exp.exp_fig13(min(size, 1 << 20) if fast else size),
        exp.exp_fig14(),
        exp.exp_table6(size),
        exp.exp_ablation_fastforward(size),
        exp.exp_ablation_scanner(min(size, 1 << 18) if fast else size),
        exp.exp_ablation_chunksize(size),
        exp.exp_metrics(size),
    ]


def _compare_sections(size: int) -> list:
    return [
        exp.exp_table6_compare(size),
        exp.exp_fig10_compare(size),
    ]


def generate(size: int, workers: int = 16, fast: bool = False) -> str:
    """Render every experiment at ``size`` bytes into one text report."""
    sections = _sections(size, workers, fast)
    return "\n\n".join(render_table(headers, rows, title=title) for title, headers, rows in sections)


def generate_markdown(size: int, workers: int = 16, fast: bool = False) -> str:
    """Render every experiment as a GitHub-markdown report."""
    parts = ["# Measured results", "",
             f"Inputs ≈ {size} bytes per dataset, {workers} simulated workers.", ""]
    for title, headers, rows in _sections(size, workers, fast):
        parts.append(f"## {title}")
        parts.append("")
        parts.append("| " + " | ".join(str(h) for h in headers) + " |")
        parts.append("|" + "|".join("---" for _ in headers) + "|")
        for row in rows:
            cells = []
            for value in row:
                cells.append(f"{value:.4g}" if isinstance(value, float) else str(value))
            parts.append("| " + " | ".join(cells) + " |")
        parts.append("")
    return "\n".join(parts)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=exp.DEFAULT_SIZE, help="target bytes per dataset")
    parser.add_argument("--workers", type=int, default=exp.DEFAULT_WORKERS, help="simulated worker count")
    parser.add_argument("--fast", action="store_true", help="shrink the slowest experiments")
    parser.add_argument("--markdown", action="store_true", help="emit GitHub markdown instead of aligned text")
    parser.add_argument("--compare-paper", action="store_true",
                        help="print only the paper-vs-measured comparison tables")
    args = parser.parse_args()
    if args.compare_paper:
        print("\n\n".join(
            render_table(headers, rows, title=title)
            for title, headers, rows in _compare_sections(args.size)
        ))
        return
    render = generate_markdown if args.markdown else generate
    print(render(args.size, args.workers, fast=args.fast))


if __name__ == "__main__":
    main()
