"""Benchmark harness: regenerates every table and figure of the paper.

- :mod:`repro.harness.runner` — method registry and timing helpers.
- :mod:`repro.harness.memory` — peak-memory measurement (Figure 13).
- :mod:`repro.harness.tables` — ASCII tables / figure series rendering.
- :mod:`repro.harness.experiments` — one function per paper table/figure.
- :mod:`repro.harness.report` — composes EXPERIMENTS.md from the above.
"""

from repro.harness.runner import METHOD_LABELS, STREAMING_METHODS, Measurement, make_engine, time_run
from repro.harness.tables import render_series, render_table

__all__ = [
    "METHOD_LABELS",
    "Measurement",
    "STREAMING_METHODS",
    "make_engine",
    "render_series",
    "render_table",
    "time_run",
]
