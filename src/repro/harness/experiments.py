"""One function per paper table/figure (the per-experiment index of
DESIGN.md maps each to its benchmark module).

Every function returns ``(title, headers, rows)`` ready for
:func:`repro.harness.tables.render_table`, plus enough structure for the
benchmark asserts.  Input sizes default to ``REPRO_BENCH_SIZE`` bytes
(the paper uses 1 GB; the pure-Python baselines are ~10^3 slower than
their C++ namesakes, so the default is MB-scale — shapes, not absolute
seconds, are the reproduction target).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.data.datasets import DATASETS, QuerySpec, large_record, record_stream
from repro.data.stats import structural_stats
from repro.engine import JsonSki
from repro.engine.stats import GROUPS
from repro.errors import RecordTooLargeError
from repro.harness.memory import measure_engine_peak
from repro.harness.runner import METHOD_LABELS, make_engine, time_run, time_run_records
from repro.harness.tables import format_bytes, format_ratio
from repro.parallel import parallel_records_run, speculative_large_run
from repro.stream.records import RecordStream

DEFAULT_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "400000"))
DEFAULT_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "16"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

#: The paper's Figure 10/11 method order.
SERIAL_METHODS = ("jpstream", "rapidjson", "simdjson", "pison", "jsonski")
#: Path to each dataset's top-level unit array (speculation axis).
ARRAY_PATHS = {"TT": "$", "BB": "$.pd", "GMD": "$", "NSPL": "$.dt", "WM": "$.it", "WP": "$"}


def all_queries() -> list[tuple[str, QuerySpec]]:
    """The twelve Table 5 queries as ``(dataset, spec)`` pairs."""
    return [(name, q) for name, spec in DATASETS.items() for q in spec.queries]


@lru_cache(maxsize=16)
def get_large(name: str, size: int) -> bytes:
    return large_record(name, size, seed=SEED)


@lru_cache(maxsize=16)
def get_records(name: str, size: int) -> RecordStream:
    return record_stream(name, size, seed=SEED)


# ---------------------------------------------------------------------------
# Table 4 — dataset statistics


def exp_table4(size: int = DEFAULT_SIZE):
    title = f"Table 4: dataset statistics (target {format_bytes(size)} per dataset)"
    headers = ["Data", "#objects", "#arrays", "#attr", "#prim", "#sub", "depth"]
    rows = []
    for name in DATASETS:
        stats = structural_stats(get_large(name, size))
        n_sub = len(get_records(name, size))
        rows.append([name, stats.n_objects, stats.n_arrays, stats.n_attributes,
                     stats.n_primitives, n_sub, stats.depth])
    return title, headers, rows


# ---------------------------------------------------------------------------
# Table 5 — queries and match counts


def exp_table5(size: int = DEFAULT_SIZE):
    title = f"Table 5: JSONPath queries ({format_bytes(size)} inputs)"
    headers = ["ID", "Query structure", "#matches"]
    rows = []
    for name, q in all_queries():
        matches = JsonSki(q.large).run(get_large(name, size))
        rows.append([q.qid, q.large, len(matches)])
    return title, headers, rows


# ---------------------------------------------------------------------------
# Figure 10 — single large record, total execution time


def exp_fig10(size: int = DEFAULT_SIZE, workers: int = DEFAULT_WORKERS, repeat: int = 1):
    title = f"Figure 10: single large record, execution time in seconds ({format_bytes(size)})"
    headers = ["Query", *[METHOD_LABELS[m] for m in SERIAL_METHODS],
               f"JPStream({workers})", f"Pison({workers})"]
    rows = []
    for name, q in all_queries():
        data = get_large(name, size)
        row: list[object] = [q.qid]
        expected = None
        for method in SERIAL_METHODS:
            seconds, matches = time_run(make_engine(method, q.large), data, repeat=repeat)
            if expected is None:
                expected = len(matches)
            elif len(matches) != expected:
                raise AssertionError(f"{method} disagrees on {q.qid}: {len(matches)} vs {expected}")
            row.append(seconds)
        for method in ("jpstream", "pison"):
            result = speculative_large_run(
                lambda p, m=method: make_engine(m, p), data, q.large, ARRAY_PATHS[name], workers
            )
            if len(result.matches) != expected:
                raise AssertionError(f"{method}({workers}) disagrees on {q.qid}")
            row.append(result.wall_seconds)
        rows.append(row)
    return title, headers, rows


# ---------------------------------------------------------------------------
# Figure 11 — small records, sequential


def small_queries() -> list[tuple[str, QuerySpec]]:
    """The Table 5 queries applicable to small records (the paper
    excludes NSPL1 and WP2 from this scenario)."""
    return [(name, q) for name, q in all_queries() if q.small is not None]


def exp_fig11(size: int = DEFAULT_SIZE, repeat: int = 1):
    title = f"Figure 11: small records, sequential execution time in seconds ({format_bytes(size)})"
    headers = ["Query", *[METHOD_LABELS[m] for m in SERIAL_METHODS]]
    rows = []
    for name, q in small_queries():
        stream = get_records(name, size)
        row: list[object] = [q.qid]
        expected = None
        for method in SERIAL_METHODS:
            seconds, matches = time_run_records(make_engine(method, q.small), stream, repeat=repeat)
            if expected is None:
                expected = len(matches)
            elif len(matches) != expected:
                raise AssertionError(f"{method} disagrees on {q.qid} (small)")
            row.append(seconds)
        rows.append(row)
    return title, headers, rows


# ---------------------------------------------------------------------------
# Figure 12 — small records, parallel (simulated workers)


def exp_fig12(size: int = DEFAULT_SIZE, workers: int = DEFAULT_WORKERS):
    title = (
        f"Figure 12: small records, {workers} simulated workers "
        f"(wall seconds; speedup vs own serial)"
    )
    headers = ["Query", *[f"{METHOD_LABELS[m]}" for m in SERIAL_METHODS],
               *[f"{METHOD_LABELS[m]} spdup" for m in SERIAL_METHODS]]
    rows = []
    for name, q in small_queries():
        stream = get_records(name, size)
        walls: list[float] = []
        speedups: list[float] = []
        for method in SERIAL_METHODS:
            result = parallel_records_run(make_engine(method, q.small), stream, workers)
            walls.append(result.wall_seconds)
            speedups.append(result.speedup)
        rows.append([q.qid, *walls, *[round(s, 1) for s in speedups]])
    return title, headers, rows


# ---------------------------------------------------------------------------
# Figure 13 — memory footprint


#: Streaming engines are measured in their bounded-memory configuration
#: (the paper: "their memory consumption is actually configurable by
#: adjusting the input buffer size"); 64 KiB chunks, 2-chunk LRU.
STREAM_CHUNK = 1 << 16


def _memory_engine(method: str, query: str):
    if method in ("jsonski", "jsonski-word"):
        mode = "word" if method.endswith("word") else "vector"
        return JsonSki(query, mode=mode, chunk_size=STREAM_CHUNK, cache_chunks=2)
    return make_engine(method, query)


def exp_fig13(size: int = DEFAULT_SIZE):
    title = (
        f"Figure 13: peak auxiliary memory on a large record "
        f"({format_bytes(size)} input; input buffer excluded; "
        f"streaming methods use a {format_bytes(STREAM_CHUNK)} buffer)"
    )
    headers = ["Query", *[METHOD_LABELS[m] for m in SERIAL_METHODS]]
    rows = []
    for name, q in all_queries()[::2]:  # one query per dataset suffices
        data = get_large(name, size)
        row: list[object] = [q.qid]
        for method in SERIAL_METHODS:
            _, peak = measure_engine_peak(_memory_engine(method, q.large), data)
            row.append(format_bytes(peak))
        rows.append(row)
    return title, headers, rows


# ---------------------------------------------------------------------------
# Figure 14 — scalability with input size (BB1)


def exp_fig14(sizes: tuple[int, ...] | None = None, simdjson_cap: int | None = None, repeat: int = 1):
    if sizes is None:
        base = max(DEFAULT_SIZE // 2, 1 << 16)
        sizes = tuple(base * (2**k) for k in range(4))
    if simdjson_cap is None:
        # Scaled stand-in for simdjson's 4 GB single-record limit: the cap
        # sits inside the sweep so the failure mode is exercised.
        simdjson_cap = sizes[-1] // 2
    title = "Figure 14: scalability on BB1 (seconds vs input size; 'cap' = record too large)"
    headers = ["bytes", *[METHOD_LABELS[m] for m in SERIAL_METHODS]]
    rows = []
    for size in sizes:
        data = get_large("BB", size)
        row: list[object] = [len(data)]
        for method in SERIAL_METHODS:
            engine = make_engine(method, "$.pd[*].cp[1:3].id")
            if method == "simdjson":
                engine.max_record_bytes = simdjson_cap
            try:
                seconds, _ = time_run(engine, data, repeat=repeat)
                row.append(seconds)
            except RecordTooLargeError:
                row.append("cap")
        rows.append(row)
    return title, headers, rows


# ---------------------------------------------------------------------------
# Table 6 — fast-forward ratios by group


def exp_table6(size: int = DEFAULT_SIZE):
    title = f"Table 6: fast-forward ratios by function group ({format_bytes(size)})"
    headers = ["Query", *GROUPS, "Overall"]
    rows = []
    for name, q in all_queries():
        engine = JsonSki(q.large, collect_stats=True)
        engine.run(get_large(name, size))
        stats = engine.last_stats
        assert stats is not None
        row = stats.as_row()
        rows.append([q.qid, *[format_ratio(row[g]) for g in GROUPS], format_ratio(row["Overall"])])
    return title, headers, rows


def exp_table6_compare(size: int = DEFAULT_SIZE):
    """Table 6 side by side with the paper's reported ratios."""
    from repro.paperdata import PAPER_TABLE6, dominant_groups

    title = f"Table 6 (paper vs measured): overall ratio and dominant groups ({format_bytes(size)})"
    headers = ["Query", "paper overall", "ours overall", "paper dominant", "ours dominant", "agree"]
    rows = []
    for name, q in all_queries():
        engine = JsonSki(q.large, collect_stats=True)
        engine.run(get_large(name, size))
        stats = engine.last_stats
        assert stats is not None
        row = stats.as_row()
        ours_dom = tuple(g for g in GROUPS if row[g] > 0.05)
        paper_dom = dominant_groups(q.qid)
        paper_overall = PAPER_TABLE6[q.qid][5]
        overlap = bool(set(ours_dom) & set(paper_dom)) or (not ours_dom and not paper_dom)
        rows.append([
            q.qid,
            format_ratio(paper_overall),
            format_ratio(row["Overall"]),
            "+".join(paper_dom) or "-",
            "+".join(ours_dom) or "-",
            "yes" if overlap else "NO",
        ])
    return title, headers, rows


def exp_fig10_compare(size: int = DEFAULT_SIZE, repeat: int = 1):
    """Figure 10 headline speedups vs the paper's (Section 5.2)."""
    from repro.paperdata import PAPER_FIG10_SPEEDUPS

    title = f"Figure 10 headline speedups of JSONSki (paper vs measured, {format_bytes(size)})"
    headers = ["vs method", "paper", "measured"]
    totals: dict[str, float] = {}
    for name, q in all_queries():
        data = get_large(name, size)
        for method in ("jpstream", "simdjson", "pison", "jsonski"):
            seconds, _ = time_run(make_engine(method, q.large), data, repeat=repeat)
            totals[method] = totals.get(method, 0.0) + seconds
    rows = [
        [METHOD_LABELS[m], f"{PAPER_FIG10_SPEEDUPS[m]}x", f"{totals[m] / totals['jsonski']:.1f}x"]
        for m in ("jpstream", "simdjson", "pison")
    ]
    return title, headers, rows


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)


def exp_ablation_fastforward(size: int = DEFAULT_SIZE, repeat: int = 1):
    title = f"Ablation A1: fast-forward on (JSONSki) vs off (Algorithm 1 RDS) ({format_bytes(size)})"
    headers = ["Query", "RDS(no-FF)", "JSONSki", "speedup"]
    rows = []
    for name, q in all_queries():
        data = get_large(name, size)
        t_rds, m1 = time_run(make_engine("rds", q.large), data, repeat=repeat)
        t_ski, m2 = time_run(make_engine("jsonski", q.large), data, repeat=repeat)
        assert len(m1) == len(m2)
        rows.append([q.qid, t_rds, t_ski, round(t_rds / t_ski, 1) if t_ski > 0 else float("inf")])
    return title, headers, rows


def exp_ablation_scanner(size: int = DEFAULT_SIZE, repeat: int = 1):
    title = f"Ablation A2: vectorized vs word-at-a-time scanner ({format_bytes(size)})"
    headers = ["Query", "JSONSki(vector)", "JSONSki(word)", "vector speedup"]
    rows = []
    for name, q in all_queries():
        data = get_large(name, size)
        t_vec, m1 = time_run(make_engine("jsonski", q.large), data, repeat=repeat)
        t_word, m2 = time_run(make_engine("jsonski-word", q.large), data, repeat=repeat)
        assert len(m1) == len(m2)
        rows.append([q.qid, t_vec, t_word, round(t_word / t_vec, 1) if t_vec > 0 else float("inf")])
    return title, headers, rows


def exp_ablation_chunksize(size: int = DEFAULT_SIZE, chunk_sizes: tuple[int, ...] = (1 << 12, 1 << 14, 1 << 16, 1 << 18), repeat: int = 1):
    title = f"Ablation A3: index chunk-size sensitivity, BB1 ({format_bytes(size)})"
    headers = ["chunk bytes", "seconds"]
    data = get_large("BB", size)
    rows = []
    for chunk in chunk_sizes:
        engine = JsonSki("$.pd[*].cp[1:3].id", chunk_size=chunk)
        seconds, _ = time_run(engine, data, repeat=repeat)
        rows.append([chunk, seconds])
    return title, headers, rows


# ---------------------------------------------------------------------------
# Observability: registry counters per query


def exp_metrics(size: int = DEFAULT_SIZE):
    """Engine counters per Table 5 query, through the metrics registry.

    The same facts Table 6 reports as ratios, plus the internals the
    observability layer exposes: structural-index work (chunks built and
    evicted, 64-bit words classified), scanner primitive calls, and
    matches emitted — one registry per query, fully from counters.
    """
    from repro.observe import MetricsRegistry

    title = f"Observability: engine counters per query ({format_bytes(size)})"
    headers = ["Query", "bytes", "skipped", "ff%", "chunks", "evicted", "words", "scans", "matches"]
    rows = []
    for name, q in all_queries():
        registry = MetricsRegistry()
        engine = JsonSki(q.large, metrics=registry)
        engine.run(get_large(name, size))
        total = registry.value("ff.total_bytes")
        skipped = sum(registry.value("ff.skipped_bytes", group=g) for g in GROUPS)
        scans = sum(
            registry.value("scanner.calls", op=op)
            for op in ("find_next", "find_prev", "count_range", "kth_in_range", "pair_close")
        )
        rows.append([
            q.qid,
            total,
            skipped,
            format_ratio(skipped / total if total else 0.0),
            registry.value("index.chunks_built"),
            registry.value("index.chunks_evicted"),
            registry.value("index.words_classified"),
            scans,
            registry.value("engine.matches"),
        ])
    return title, headers, rows
