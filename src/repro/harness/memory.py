"""Peak-memory measurement (paper Figure 13).

Uses :mod:`tracemalloc`, which numpy cooperates with, so both Python
objects (DOM nodes, leveled index lists) and array buffers (bitmap words,
position arrays) are counted.  The reported number is the peak
*auxiliary* allocation of the run — everything the method allocates
beyond the input buffer itself, which is the quantity that separates the
streaming scheme (bounded) from the preprocessing scheme (O(input) or
worse) in Figure 13.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Any, Callable, TypeVar

T = TypeVar("T")


def measure_peak(fn: Callable[[], T]) -> tuple[T, int]:
    """Run ``fn`` and return ``(result, peak_allocated_bytes)``.

    tracemalloc slows execution several-fold; never combine this with
    timing measurements.
    """
    gc.collect()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    base, _ = tracemalloc.get_traced_memory()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, max(0, peak - base)


def measure_engine_peak(engine: Any, data: bytes) -> tuple[int, int]:
    """Peak auxiliary bytes of one ``engine.run(data)``; returns
    ``(n_matches, peak_bytes)``."""
    matches, peak = measure_peak(lambda: engine.run(data))
    return len(matches), peak
