"""ASCII rendering of tables and figure series.

The paper's figures are bar/line charts; the harness renders the same
data as aligned text tables (one row per bar group / line point) so the
"figure" can be regenerated and diffed in a terminal or CI log.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render line-chart data (Figure 14 style): one row per x value."""
    headers = [x_label, *series.keys()]
    rows = [[x, *(series[name][i] for name in series)] for i, x in enumerate(xs)]
    return render_table(headers, rows, title=title)


def format_bytes(n: int) -> str:
    """Human-readable byte count."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    raise AssertionError("unreachable")


def format_ratio(r: float) -> str:
    """Table 6 style percentage with the paper's <0.01% convention."""
    if r == 0:
        return "0.00%"
    if r < 0.0001:
        return "<0.01%"
    return f"{100 * r:.2f}%"
