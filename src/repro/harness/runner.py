"""Method registry and timing helpers shared by all benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.engine.output import MatchList
from repro.jsonpath.ast import Path
from repro.registry import ENGINES

#: The five methods of the paper's Table 2, in its order, plus this
#: reproduction's extra ablation engines — derived from the unified
#: engine registry (:data:`repro.ENGINES`).
METHOD_LABELS: dict[str, str] = ENGINES.labels()

#: Methods following the streaming scheme (memory ≈ input-only).
STREAMING_METHODS = ENGINES.names(streaming=True)


def make_engine(method: str, query: str | Path, **opts: Any) -> object:
    """Instantiate a registered method for one query."""
    try:
        info = ENGINES[method]
    except KeyError:
        raise KeyError(f"unknown method {method!r}; expected one of {sorted(ENGINES)}") from None
    return info(query, **opts)


@dataclass
class Measurement:
    """One timed experiment cell."""

    method: str
    dataset: str
    query_id: str
    seconds: float
    n_matches: int
    extra: dict[str, Any] = field(default_factory=dict)


def time_run(engine: object, data: bytes, repeat: int = 1) -> tuple[float, MatchList]:
    """Best-of-``repeat`` wall time of ``engine.run(data)``."""
    best = float("inf")
    matches = MatchList()
    for _ in range(repeat):
        t0 = time.perf_counter()
        matches = engine.run(data)
        best = min(best, time.perf_counter() - t0)
    return best, matches


def time_run_records(engine: object, stream: object, repeat: int = 1) -> tuple[float, MatchList]:
    """Best-of-``repeat`` wall time of ``engine.run_records(stream)``."""
    best = float("inf")
    matches = MatchList()
    for _ in range(repeat):
        t0 = time.perf_counter()
        matches = engine.run_records(stream)
        best = min(best, time.perf_counter() - t0)
    return best, matches
