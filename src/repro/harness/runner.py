"""Method registry and timing helpers shared by all benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines import JPStream, PisonLike, RapidJsonLike, SimdJsonLike
from repro.baselines.stdlib_json import StdlibJson
from repro.engine import JsonSki, RecursiveDescentStreamer
from repro.engine.output import MatchList
from repro.jsonpath.ast import Path

#: The five methods of the paper's Table 2, in its order, plus this
#: reproduction's extra ablation engines.
METHOD_LABELS: dict[str, str] = {
    "jpstream": "JPStream",
    "rapidjson": "RapidJSON",
    "simdjson": "simdjson",
    "pison": "Pison",
    "jsonski": "JSONSki",
    "jsonski-word": "JSONSki(word)",
    "rds": "RDS(no-FF)",
    "stdlib": "json.loads+walk",
}

#: Methods following the streaming scheme (memory ≈ input-only).
STREAMING_METHODS = ("jpstream", "jsonski", "jsonski-word", "rds")

_FACTORIES: dict[str, Callable[[Any], object]] = {
    "jpstream": JPStream,
    "rapidjson": RapidJsonLike,
    "simdjson": SimdJsonLike,
    "pison": PisonLike,
    "jsonski": JsonSki,
    "jsonski-word": lambda q: JsonSki(q, mode="word"),
    "rds": RecursiveDescentStreamer,
    "stdlib": StdlibJson,
}


def make_engine(method: str, query: str | Path) -> object:
    """Instantiate a registered method for one query."""
    try:
        factory = _FACTORIES[method]
    except KeyError:
        raise KeyError(f"unknown method {method!r}; expected one of {sorted(_FACTORIES)}") from None
    return factory(query)


@dataclass
class Measurement:
    """One timed experiment cell."""

    method: str
    dataset: str
    query_id: str
    seconds: float
    n_matches: int
    extra: dict[str, Any] = field(default_factory=dict)


def time_run(engine: object, data: bytes, repeat: int = 1) -> tuple[float, MatchList]:
    """Best-of-``repeat`` wall time of ``engine.run(data)``."""
    best = float("inf")
    matches = MatchList()
    for _ in range(repeat):
        t0 = time.perf_counter()
        matches = engine.run(data)
        best = min(best, time.perf_counter() - t0)
    return best, matches


def time_run_records(engine: object, stream: object, repeat: int = 1) -> tuple[float, MatchList]:
    """Best-of-``repeat`` wall time of ``engine.run_records(stream)``."""
    best = float("inf")
    matches = MatchList()
    for _ in range(repeat):
        t0 = time.perf_counter()
        matches = engine.run_records(stream)
        best = min(best, time.perf_counter() - t0)
    return best, matches
